//! Deployment of a quantised CNN onto the instruction-set simulator.

use crate::asm::Assembler;
use crate::kernels::{emit_conv3x3, emit_fc, emit_maxpool2x2, KernelVariant, OutputFormat};
use crate::layout::MemoryPlan;
use crate::pool::CpuPool;
use pcount_isa::{reg, Cpu, ExecMode, HotBlock, MemStats, MemoryModel, PipelineStats, SimError};
use pcount_quant::QuantizedCnn;
use pcount_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;

/// The execution target of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The MAUPITI core: IBEX pipeline plus the SDOTP SIMD extension.
    Maupiti,
    /// A vanilla IBEX core without custom instructions (scalar kernels).
    Ibex,
}

impl Target {
    /// Whether kernels may use the SDOTP instructions.
    pub fn uses_simd(self) -> bool {
        matches!(self, Target::Maupiti)
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Maupiti => write!(f, "MAUPITI"),
            Target::Ibex => write!(f, "IBEX"),
        }
    }
}

/// Error building a deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The generated program does not fit the instruction memory.
    CodeTooLarge {
        /// Program size in bytes.
        code_bytes: usize,
        /// Instruction memory size in bytes.
        imem_bytes: usize,
    },
    /// Weights plus buffers do not fit the data memory.
    DataTooLarge {
        /// Required data bytes.
        data_bytes: usize,
        /// Data memory size in bytes.
        dmem_bytes: usize,
    },
    /// Internal assembly error (undefined label).
    Assembly(String),
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::CodeTooLarge {
                code_bytes,
                imem_bytes,
            } => write!(
                f,
                "code of {code_bytes} B exceeds {imem_bytes} B of instruction memory"
            ),
            DeployError::DataTooLarge {
                data_bytes,
                dmem_bytes,
            } => write!(
                f,
                "data of {data_bytes} B exceeds {dmem_bytes} B of data memory"
            ),
            DeployError::Assembly(msg) => write!(f, "assembly error: {msg}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// Result of one inference on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceRun {
    /// Raw 32-bit logits.
    pub logits: Vec<i32>,
    /// Predicted class (argmax of the logits).
    pub prediction: usize,
    /// Cycles consumed by this inference.
    pub cycles: u64,
    /// Instructions retired by this inference.
    pub instructions: u64,
    /// SDOTP instructions executed (0 on the vanilla IBEX target).
    pub sdotp: u64,
    /// Pipeline stall/flush counters of this inference (all zero under
    /// [`ExecMode::Simple`]).
    pub pipeline: PipelineStats,
    /// Memory-hierarchy stall breakdown of this inference (all zero under
    /// [`MemoryModel::Flat`]).
    pub mem: MemStats,
}

/// Static footprint and per-inference cost of a deployed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentReport {
    /// Program size in bytes.
    pub code_bytes: usize,
    /// Data memory usage in bytes (weights, buffers, input, logits).
    pub data_bytes: usize,
    /// Weight/bias bytes only.
    pub weight_bytes: usize,
    /// Cycles per inference (measured on a sample frame).
    pub cycles: u64,
    /// Instructions per inference.
    pub instructions: u64,
    /// SDOTP instructions per inference.
    pub sdotp: u64,
    /// Memory-hierarchy stall breakdown per inference (all zero under
    /// the default [`MemoryModel::Flat`]).
    pub mem: MemStats,
    /// Pipeline stall/flush counters per inference (all zero under
    /// [`ExecMode::Simple`]).
    pub pipeline: PipelineStats,
}

/// Default per-inference watchdog budget, in retired instructions: any
/// frame that has not halted after this many instructions is aborted with
/// [`SimError::Timeout`]. Far above any healthy inference (the deployed
/// CNNs retire well under a million instructions per frame); the
/// resilience layer passes reduced budgets through
/// [`Deployment::run_frame_with_budget`] to model injected stalls.
pub const INSTRUCTION_BUDGET: u64 = 50_000_000;

/// A quantised model compiled for a target and loaded into a simulated
/// MAUPITI/IBEX memory system, ready to run inferences.
#[derive(Debug, Clone)]
pub struct Deployment {
    target: Target,
    model: QuantizedCnn,
    plan: MemoryPlan,
    code_bytes: usize,
    base_cpu: Cpu,
}

impl Deployment {
    /// Compiles `model` for `target` with MAUPITI's 16 KB + 16 KB memories.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the program or the data image does not
    /// fit the on-chip memories.
    pub fn new(model: &QuantizedCnn, target: Target) -> Result<Self, DeployError> {
        Self::with_memory(model, target, 16 * 1024, 16 * 1024)
    }

    /// Compiles `model` with explicit memory sizes.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the program or data image does not fit.
    pub fn with_memory(
        model: &QuantizedCnn,
        target: Target,
        imem_bytes: usize,
        dmem_bytes: usize,
    ) -> Result<Self, DeployError> {
        let plan = MemoryPlan::new(model);
        if plan.total_bytes > dmem_bytes {
            return Err(DeployError::DataTooLarge {
                data_bytes: plan.total_bytes,
                dmem_bytes,
            });
        }
        let program = build_program(model, &plan, target).map_err(DeployError::Assembly)?;
        let code_bytes = program.len() * 4;
        if code_bytes > imem_bytes {
            return Err(DeployError::CodeTooLarge {
                code_bytes,
                imem_bytes,
            });
        }
        // Deployments run on the block-cached engine: the program image is
        // fixed, so every inference after the first dispatches fully
        // pre-decoded blocks (the cache is shared across the per-frame CPU
        // clones). Use `set_exec_mode` to fall back to the reference
        // interpreter, e.g. for cross-checking.
        let mut cpu = Cpu::new(imem_bytes, dmem_bytes).with_exec_mode(ExecMode::BlockCached);
        cpu.load_program(&program)
            .map_err(|e| DeployError::Assembly(e.to_string()))?;
        cpu.mem.write_dmem(plan.weight_addr[0], &plan.weight_image);
        Ok(Self {
            target,
            model: model.clone(),
            plan,
            code_bytes,
            base_cpu: cpu,
        })
    }

    /// The deployment target.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The simulator engine inferences run on (block-cached by default).
    pub fn exec_mode(&self) -> ExecMode {
        self.base_cpu.exec_mode()
    }

    /// Selects the simulator engine used by subsequent inferences.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.base_cpu.set_exec_mode(mode);
    }

    /// The memory-hierarchy model inferences are charged through (the
    /// flat ideal-memory model by default, which reproduces the
    /// historical cycle counts bit-identically).
    pub fn memory_model(&self) -> MemoryModel {
        self.base_cpu.memory_model()
    }

    /// Selects the memory-hierarchy model used by subsequent inferences.
    /// Logits, predictions and instruction counts are identical under
    /// every model — only cycles and the stall breakdown change.
    pub fn set_memory_model(&mut self, model: MemoryModel) {
        self.base_cpu.set_memory_model(model);
    }

    /// The memory plan (addresses and sizes in data memory).
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Program size in bytes.
    pub fn code_size_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Data memory usage in bytes.
    pub fn data_size_bytes(&self) -> usize {
        self.plan.total_bytes
    }

    /// Weight/bias bytes in data memory.
    pub fn weight_bytes(&self) -> usize {
        self.plan.weight_bytes
    }

    /// Enables or disables superblock chaining on the simulator engine
    /// (enabled by default; architectural results are identical either
    /// way). Used by the throughput bench to measure the chaining delta.
    pub fn set_superblock_chaining(&mut self, enabled: bool) {
        self.base_cpu.set_superblock_chaining(enabled);
    }

    /// Whether the block-cached engine lowers recognised loop idioms
    /// (SDOTP MAC reductions, memset/memcpy/strided copies) to fused
    /// host-level loops.
    pub fn macro_fusion(&self) -> bool {
        self.base_cpu.macro_fusion()
    }

    /// Enables or disables macro-op fusion on the simulator engine
    /// (enabled by default; architectural results, instruction counts
    /// and cycle accounting are identical either way). Used by the
    /// throughput bench to measure the fusion speedup.
    pub fn set_macro_fusion(&mut self, enabled: bool) {
        self.base_cpu.set_macro_fusion(enabled);
    }

    /// Runs one inference on an ambient-normalised 8x8 frame.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults (which indicate a code-generation bug).
    pub fn run_frame(&self, frame: &[f32]) -> Result<InferenceRun, SimError> {
        self.run_frame_on(&mut self.base_cpu.clone(), frame)
    }

    /// Runs one inference on the given pristine CPU clone, leaving the
    /// post-inference state (trace, profile counters) on `cpu`.
    ///
    /// When telemetry is enabled, every attempt bumps the
    /// `deploy/frames` counter and records its host wall time into the
    /// `deploy/frame_latency_ns` histogram; faults additionally bump
    /// `deploy/frame_faults`. The simulated results themselves are
    /// unaffected.
    fn run_frame_on(&self, cpu: &mut Cpu, frame: &[f32]) -> Result<InferenceRun, SimError> {
        self.run_frame_with_budget(cpu, frame, INSTRUCTION_BUDGET)
    }

    /// Runs one inference on `cpu` with an explicit watchdog budget of
    /// `max_instructions` — the per-frame cycle-limit seam the resilience
    /// layer supervises streams through. The default path
    /// ([`Deployment::run_frame`], [`Deployment::run_batch`]) uses
    /// [`INSTRUCTION_BUDGET`]; a reduced budget aborts a (injected or
    /// real) runaway inference with [`SimError::Timeout`] instead of
    /// hanging the stream.
    ///
    /// The caller owns `cpu` and its post-run state: after an `Ok` the
    /// CPU is halted at the end of the program; after a fault it holds a
    /// torn memory image and a mid-program PC and must be re-warmed (see
    /// `Cpu::restore_from` / `CpuPool::quarantine`) before reuse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] when the budget is exhausted, or any
    /// fault raised by the simulated program.
    pub fn run_frame_with_budget(
        &self,
        cpu: &mut Cpu,
        frame: &[f32],
        max_instructions: u64,
    ) -> Result<InferenceRun, SimError> {
        if !pcount_telemetry::enabled() {
            return self.run_frame_inner(cpu, frame, max_instructions);
        }
        let start = pcount_telemetry::now_ns();
        let result = self.run_frame_inner(cpu, frame, max_instructions);
        frame_latency_histogram().record(pcount_telemetry::now_ns() - start);
        pcount_telemetry::counter("deploy/frames").add(1);
        if result.is_err() {
            pcount_telemetry::counter("deploy/frame_faults").add(1);
        }
        result
    }

    /// The uninstrumented inference body of [`Deployment::run_frame_on`].
    fn run_frame_inner(
        &self,
        cpu: &mut Cpu,
        frame: &[f32],
        max_instructions: u64,
    ) -> Result<InferenceRun, SimError> {
        let input = self.plan.pack_input(&self.model, frame);
        cpu.mem.write_dmem(self.plan.input_addr, &input);
        let summary = cpu.run(max_instructions)?;
        let mut logits = Vec::with_capacity(self.model.config.num_classes);
        for i in 0..self.model.config.num_classes {
            let bytes = cpu.mem.read_dmem(self.plan.logits_addr + 4 * i as u32, 4);
            logits.push(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]));
        }
        let prediction = logits
            .iter()
            .enumerate()
            .max_by_key(|(i, &v)| (v, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Ok(InferenceRun {
            logits,
            prediction,
            cycles: summary.cycles,
            instructions: summary.instructions,
            sdotp: cpu.trace.sdotp_count(),
            pipeline: cpu.pipeline_stats(),
            mem: cpu.mem_stats(),
        })
    }

    /// Builds a pool of `threads` warmed CPUs (`0` = auto) for
    /// [`Deployment::run_batch`]. The warmup inference (on an all-zero
    /// frame) decodes and publishes every superblock of the deployed
    /// program into the shared cache, so pooled CPUs never decode on the
    /// batch path.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the warmup inference.
    pub fn make_pool(&self, threads: usize) -> Result<CpuPool, SimError> {
        let pixels = self.plan.geometry.h * self.plan.geometry.h;
        self.run_frame(&vec![0.0; pixels])?;
        Ok(CpuPool::from_base(&self.base_cpu, threads))
    }

    /// Runs one inference per frame of a `[N, 1, 8, 8]` batch across the
    /// pool's threads, returning the runs in frame order.
    ///
    /// Results are bit-identical to a serial [`Deployment::run_frame`]
    /// loop — logits, predictions, cycles and instruction counts —
    /// regardless of the pool size: every frame's inference is
    /// independent, and each worker writes into its own contiguous slice
    /// of the output.
    ///
    /// # Errors
    ///
    /// Every frame is evaluated (faults no longer make a worker's range
    /// short-circuit), each fault bumps the `deploy/frame_faults`
    /// telemetry counter, and the error returned is the fault of the
    /// **lowest** faulting frame index — identical to what a serial
    /// [`Deployment::run_frame`] loop would hit first.
    pub fn run_batch(&self, x: &Tensor, pool: &CpuPool) -> Result<Vec<InferenceRun>, SimError> {
        self.run_batch_with_budgets(x, pool, |_| INSTRUCTION_BUDGET)
    }

    /// [`Deployment::run_batch`] with a per-frame watchdog budget:
    /// `budget_of(i)` is the instruction limit of frame `i`. This is the
    /// seam the resilience layer and the fault-ordering tests use to make
    /// *specific* frames of a pooled batch time out deterministically;
    /// the error semantics are identical to `run_batch` (every frame is
    /// evaluated, every fault is counted, the lowest-index fault is
    /// returned).
    ///
    /// # Errors
    ///
    /// Returns the fault of the lowest faulting frame index, if any.
    pub fn run_batch_with_budgets<F>(
        &self,
        x: &Tensor,
        pool: &CpuPool,
        budget_of: F,
    ) -> Result<Vec<InferenceRun>, SimError>
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let _span = pcount_telemetry::span("deploy/run_batch");
        let n = x.shape()[0];
        let pixels: usize = x.shape()[1..].iter().product();
        let data = x.data();
        let frame = |i: usize| &data[i * pixels..(i + 1) * pixels];
        let collect = |runs: Vec<Result<InferenceRun, SimError>>| {
            // First (lowest-index) fault wins, after every frame ran and
            // was counted — exactly the serial loop's error, without its
            // short-circuit hiding later faults from the fault counter.
            runs.into_iter().collect::<Result<Vec<_>, _>>()
        };
        if pool.threads() <= 1 || n <= 1 {
            return collect(
                (0..n)
                    .map(|i| {
                        self.run_frame_with_budget(
                            &mut self.base_cpu.clone(),
                            frame(i),
                            budget_of(i),
                        )
                    })
                    .collect(),
            );
        }
        // One contiguous frame range per pooled CPU, run as jobs on the
        // persistent runtime pool (no threads are spawned per batch).
        // Ranges are concatenated in order, so the flattened run list is
        // frame-ordered.
        let chunk = n.div_ceil(pool.threads());
        let ranges = n.div_ceil(chunk);
        let results = pcount_runtime::current().map_limited(ranges, pool.threads(), |w| {
            let cpu = pool.cpu(w);
            (w * chunk..((w + 1) * chunk).min(n))
                .map(|i| self.run_frame_with_budget(&mut cpu.clone(), frame(i), budget_of(i)))
                .collect::<Vec<Result<InferenceRun, SimError>>>()
        });
        collect(results.into_iter().flatten().collect())
    }

    /// Predicts classes for a `[N, 1, 8, 8]` batch of raw frames,
    /// evaluating frames in parallel across `threads` workers (`0` =
    /// auto). Predictions are identical to the serial path for any thread
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn predict_batch_with_threads(
        &self,
        x: &Tensor,
        threads: usize,
    ) -> Result<Vec<usize>, SimError> {
        let pool = CpuPool::from_base(
            &self.base_cpu,
            crate::pool::resolve_cpu_pool_threads(threads).min(x.shape()[0].max(1)),
        );
        Ok(self
            .run_batch(x, &pool)?
            .into_iter()
            .map(|r| r.prediction)
            .collect())
    }

    /// Predicts classes for a `[N, 1, 8, 8]` batch of raw frames using
    /// the host's available parallelism.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn predict_batch(&self, x: &Tensor) -> Result<Vec<usize>, SimError> {
        self.predict_batch_with_threads(x, 0)
    }

    /// Trace-cache profile: runs one inference on `frame` and returns the
    /// `n` hottest superblock traces by retired instructions. The
    /// profiling run always uses [`ExecMode::BlockCached`] (the per-trace
    /// counters only exist there), regardless of the deployment's
    /// configured engine.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn hottest_blocks(&self, frame: &[f32], n: usize) -> Result<Vec<HotBlock>, SimError> {
        let mut cpu = self.base_cpu.clone();
        cpu.set_exec_mode(ExecMode::BlockCached);
        self.run_frame_on(&mut cpu, frame)?;
        Ok(cpu.hottest_blocks(n))
    }

    /// Runs one inference on `frame` under [`ExecMode::BlockCached`] and
    /// returns the aggregated macro-op fusion profile: one `(pattern
    /// name, fused trace entries, fused loop iterations)` triple per
    /// recognised loop idiom, sorted by pattern name. Empty when fusion
    /// is disabled on this deployment.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn fusion_profile(&self, frame: &[f32]) -> Result<Vec<(&'static str, u64, u64)>, SimError> {
        let mut cpu = self.base_cpu.clone();
        cpu.set_exec_mode(ExecMode::BlockCached);
        self.run_frame_on(&mut cpu, frame)?;
        Ok(cpu.fusion_profile())
    }

    /// Builds a static + dynamic cost report using `frame` as the sample
    /// input for the cycle measurement.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn report(&self, frame: &[f32]) -> Result<DeploymentReport, SimError> {
        let run = self.run_frame(frame)?;
        Ok(DeploymentReport {
            code_bytes: self.code_bytes,
            data_bytes: self.data_size_bytes(),
            weight_bytes: self.weight_bytes(),
            cycles: run.cycles,
            instructions: run.instructions,
            sdotp: run.sdotp,
            mem: run.mem,
            pipeline: run.pipeline,
        })
    }
}

/// Cached handle of the per-frame inference latency histogram (avoids
/// taking the registry lock on every frame).
fn frame_latency_histogram() -> &'static pcount_telemetry::Histogram {
    static HANDLE: std::sync::OnceLock<&'static pcount_telemetry::Histogram> =
        std::sync::OnceLock::new();
    HANDLE.get_or_init(|| pcount_telemetry::histogram("deploy/frame_latency_ns"))
}

/// Builds the complete program: per-layer call sequence followed by the
/// (deduplicated) kernel bodies.
fn build_program(
    model: &QuantizedCnn,
    plan: &MemoryPlan,
    target: Target,
) -> Result<Vec<pcount_isa::Instr>, String> {
    let p = model.assignment.layers();
    let geo = &plan.geometry;
    let simd = target.uses_simd();
    let mut asm = Assembler::new();

    // Kernel labels, deduplicated by variant.
    let mut conv_kernels: HashMap<String, KernelVariant> = HashMap::new();
    let mut fc_kernels: HashMap<String, KernelVariant> = HashMap::new();
    let conv_label = |v: KernelVariant| format!("conv3x3_{}", v.suffix());
    let fc_label = |v: KernelVariant| format!("fc_{}", v.suffix());

    let conv1_variant = KernelVariant {
        input: p[0],
        output: OutputFormat::Packed(p[1]),
        simd,
    };
    let conv2_variant = KernelVariant {
        input: p[1],
        output: OutputFormat::Packed(p[2]),
        simd,
    };
    let fc1_variant = KernelVariant {
        input: p[2],
        output: OutputFormat::Packed(p[3]),
        simd,
    };
    let fc2_variant = KernelVariant {
        input: p[3],
        output: OutputFormat::Raw32,
        simd,
    };
    conv_kernels.insert(conv_label(conv1_variant), conv1_variant);
    conv_kernels.insert(conv_label(conv2_variant), conv2_variant);
    fc_kernels.insert(fc_label(fc1_variant), fc1_variant);
    fc_kernels.insert(fc_label(fc2_variant), fc2_variant);
    let pool_label = "maxpool2x2".to_string();

    let rq_mult = |i: usize| model.layers[i].requant.map(|r| r.mult).unwrap_or(0);

    // Layer 1: conv1 from the input buffer into buffer A.
    asm.li(reg::A0, plan.input_addr as i32);
    asm.li(reg::A1, plan.weight_addr[0] as i32);
    asm.li(reg::A2, plan.bias_addr[0] as i32);
    asm.li(reg::A3, plan.buf_a_addr as i32);
    asm.li(reg::A4, geo.h as i32);
    asm.li(reg::A5, p[0].storage_bytes(geo.cin_pad) as i32);
    asm.li(reg::A6, geo.c1 as i32);
    asm.li(reg::A7, geo.c1_pad as i32);
    asm.li(reg::S2, rq_mult(0));
    asm.li(reg::S3, p[1].qmax());
    asm.call(conv_label(conv1_variant));

    // Max pool: buffer A -> buffer B.
    asm.li(reg::A0, plan.buf_a_addr as i32);
    asm.li(reg::A1, plan.buf_b_addr as i32);
    asm.li(reg::A4, geo.h as i32);
    asm.li(reg::A5, geo.c1_pad as i32);
    asm.call(&pool_label);

    // Layer 2: conv2 from buffer B into buffer A.
    asm.li(reg::A0, plan.buf_b_addr as i32);
    asm.li(reg::A1, plan.weight_addr[1] as i32);
    asm.li(reg::A2, plan.bias_addr[1] as i32);
    asm.li(reg::A3, plan.buf_a_addr as i32);
    asm.li(reg::A4, geo.pooled as i32);
    asm.li(reg::A5, p[1].storage_bytes(geo.c1_pad) as i32);
    asm.li(reg::A6, geo.c2 as i32);
    asm.li(reg::A7, geo.c2_pad as i32);
    asm.li(reg::S2, rq_mult(1));
    asm.li(reg::S3, p[2].qmax());
    asm.call(conv_label(conv2_variant));

    // Layer 3: fc1 from buffer A into buffer B.
    asm.li(reg::A0, plan.buf_a_addr as i32);
    asm.li(reg::A1, plan.weight_addr[2] as i32);
    asm.li(reg::A2, plan.bias_addr[2] as i32);
    asm.li(reg::A3, plan.buf_b_addr as i32);
    asm.li(reg::A4, geo.f1 as i32);
    asm.li(
        reg::A5,
        p[2].storage_bytes(geo.pooled * geo.pooled * geo.c2_pad) as i32,
    );
    asm.li(reg::S2, rq_mult(2));
    asm.li(reg::S3, p[3].qmax());
    asm.call(fc_label(fc1_variant));

    // Layer 4: fc2 from buffer B into the logits.
    asm.li(reg::A0, plan.buf_b_addr as i32);
    asm.li(reg::A1, plan.weight_addr[3] as i32);
    asm.li(reg::A2, plan.bias_addr[3] as i32);
    asm.li(reg::A3, plan.logits_addr as i32);
    asm.li(reg::A4, geo.classes as i32);
    asm.li(reg::A5, p[3].storage_bytes(geo.f1_pad) as i32);
    asm.li(reg::S2, 0);
    asm.li(reg::S3, 0);
    asm.call(fc_label(fc2_variant));
    asm.ebreak();

    // Kernel bodies (shared across layers that use the same variant).
    for (label, variant) in &conv_kernels {
        emit_conv3x3(&mut asm, label, *variant);
    }
    for (label, variant) in &fc_kernels {
        emit_fc(&mut asm, label, *variant);
    }
    emit_maxpool2x2(&mut asm, &pool_label, p[1]);

    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_nn::{CnnConfig, TrainConfig};
    use pcount_quant::{
        fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_dataset(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[n, 1, 8, 8]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..4usize);
            let (cy, cx) = [(2, 2), (2, 6), (6, 2), (6, 6)][class];
            for dy in 0..2usize {
                for dx in 0..2usize {
                    x.set(&[i, 0, cy + dy - 1, cx + dx - 1], 3.0);
                }
            }
            for h in 0..8 {
                for w in 0..8 {
                    let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                    x.set(&[i, 0, h, w], v);
                }
            }
            y.push(class);
        }
        (x, y)
    }

    fn quantized_model(
        assignment: PrecisionAssignment,
        rng: &mut StdRng,
    ) -> (QuantizedCnn, Tensor) {
        let (x, y) = toy_dataset(120, rng);
        let cfg = CnnConfig::seed().with_channels(5, 6, 10);
        let mut net = cfg.build(rng);
        let tc = TrainConfig {
            epochs: 5,
            batch_size: 32,
            learning_rate: 3e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, rng);
        let folded = fold_sequential(cfg, &net).expect("fold");
        let mut qat = QatCnn::from_folded(&folded, assignment);
        let qc = QatConfig {
            epochs: 2,
            batch_size: 32,
            learning_rate: 5e-4,
            verbose: false,
        };
        let _ = qat_finetune(&mut qat, &x, &y, &qc, rng);
        (QuantizedCnn::from_qat(&qat), x)
    }

    fn check_bit_exact(assignment: PrecisionAssignment, target: Target, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (model, x) = quantized_model(assignment, &mut rng);
        let deployment = Deployment::new(&model, target).expect("deploy");
        let pixels = 64usize;
        for i in 0..10 {
            let frame = &x.data()[i * pixels..(i + 1) * pixels];
            let run = deployment.run_frame(frame).expect("run");
            let golden = model.forward_int(&model.quantize_input(frame));
            assert_eq!(
                run.logits, golden,
                "deployed logits differ from the integer golden model \
                 (frame {i}, {assignment}, {target})"
            );
        }
    }

    #[test]
    fn maupiti_int8_matches_golden_model_bit_exactly() {
        check_bit_exact(
            PrecisionAssignment::uniform(Precision::Int8),
            Target::Maupiti,
            0,
        );
    }

    #[test]
    fn ibex_int8_matches_golden_model_bit_exactly() {
        check_bit_exact(
            PrecisionAssignment::uniform(Precision::Int8),
            Target::Ibex,
            1,
        );
    }

    #[test]
    fn maupiti_mixed_8444_matches_golden_model() {
        check_bit_exact(
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int4,
            ]),
            Target::Maupiti,
            2,
        );
    }

    #[test]
    fn ibex_mixed_8448_matches_golden_model() {
        check_bit_exact(
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int8,
            ]),
            Target::Ibex,
            3,
        );
    }

    #[test]
    fn block_cached_engine_matches_simple_engine_bit_exactly() {
        let mut rng = StdRng::seed_from_u64(8);
        let (model, x) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        for target in [Target::Maupiti, Target::Ibex] {
            let cached = Deployment::new(&model, target).expect("deploy");
            assert_eq!(cached.exec_mode(), ExecMode::BlockCached);
            let mut simple = cached.clone();
            simple.set_exec_mode(ExecMode::Simple);
            for i in 0..5 {
                let frame = &x.data()[i * 64..(i + 1) * 64];
                let rc = cached.run_frame(frame).expect("cached run");
                let rs = simple.run_frame(frame).expect("simple run");
                assert_eq!(rc.logits, rs.logits, "{target} frame {i}");
                assert_eq!(rc.prediction, rs.prediction);
                assert_eq!(rc.instructions, rs.instructions);
                assert_eq!(rc.sdotp, rs.sdotp);
                // The pipelined model only adds load-use stalls on top of
                // the flat costs.
                assert!(rc.cycles >= rs.cycles, "{} < {}", rc.cycles, rs.cycles);
            }
        }
    }

    #[test]
    fn parallel_batch_matches_serial_bit_exactly_in_both_exec_modes() {
        let mut rng = StdRng::seed_from_u64(9);
        let (model, x) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let n = 12usize;
        let batch = Tensor::from_vec(x.data()[..n * 64].to_vec(), &[n, 1, 8, 8]);
        for mode in [ExecMode::BlockCached, ExecMode::Simple] {
            let mut deployment = Deployment::new(&model, Target::Maupiti).expect("deploy");
            deployment.set_exec_mode(mode);
            let serial: Vec<InferenceRun> = (0..n)
                .map(|i| {
                    deployment
                        .run_frame(&batch.data()[i * 64..(i + 1) * 64])
                        .expect("serial run")
                })
                .collect();
            for threads in [1usize, 3, 4] {
                let pool = deployment.make_pool(threads).expect("pool");
                assert_eq!(pool.threads(), threads);
                let parallel = deployment.run_batch(&batch, &pool).expect("batch");
                // Bit-identical: logits, prediction, cycles, instret and
                // sdotp all compare equal, in frame order.
                assert_eq!(parallel, serial, "{mode:?} with {threads} threads");
            }
            let serial_preds: Vec<usize> = serial.iter().map(|r| r.prediction).collect();
            assert_eq!(
                deployment.predict_batch(&batch).expect("predict"),
                serial_preds,
                "{mode:?} predict_batch"
            );
            assert_eq!(
                deployment
                    .predict_batch_with_threads(&batch, 4)
                    .expect("predict"),
                serial_preds,
            );
        }
    }

    #[test]
    fn hottest_blocks_report_covers_the_inference() {
        let mut rng = StdRng::seed_from_u64(10);
        let (model, x) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let deployment = Deployment::new(&model, Target::Maupiti).expect("deploy");
        let frame = &x.data()[0..64];
        let run = deployment.run_frame(frame).expect("run");
        let hot = deployment.hottest_blocks(frame, 5).expect("profile");
        assert!(!hot.is_empty());
        assert!(hot.len() <= 5);
        assert!(hot[0].executions > 0);
        // The top traces dominate the kernel inner loops: together they
        // must account for a large share of the retired instructions.
        let top_instrs: u64 = hot.iter().map(|h| h.instructions).sum();
        assert!(
            top_instrs * 2 > run.instructions,
            "top-5 traces cover under half the inference ({top_instrs} of {})",
            run.instructions
        );
    }

    #[test]
    fn maupiti_uses_sdotp_and_ibex_does_not() {
        let mut rng = StdRng::seed_from_u64(4);
        let (model, x) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let frame = &x.data()[0..64];
        let maupiti = Deployment::new(&model, Target::Maupiti).unwrap();
        let ibex = Deployment::new(&model, Target::Ibex).unwrap();
        let run_m = maupiti.run_frame(frame).unwrap();
        let run_i = ibex.run_frame(frame).unwrap();
        assert!(run_m.sdotp > 0);
        assert_eq!(run_i.sdotp, 0);
        assert_eq!(run_m.logits, run_i.logits);
        assert!(
            run_m.cycles < run_i.cycles,
            "SDOTP kernels should be faster ({} vs {})",
            run_m.cycles,
            run_i.cycles
        );
    }

    #[test]
    fn int4_weights_shrink_the_data_footprint() {
        let mut rng = StdRng::seed_from_u64(5);
        let (m8, _) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let (m4, _) = quantized_model(
            PrecisionAssignment::new([
                Precision::Int8,
                Precision::Int4,
                Precision::Int4,
                Precision::Int4,
            ]),
            &mut rng,
        );
        let d8 = Deployment::new(&m8, Target::Maupiti).unwrap();
        let d4 = Deployment::new(&m4, Target::Maupiti).unwrap();
        assert!(d4.weight_bytes() < d8.weight_bytes());
    }

    #[test]
    fn code_and_data_fit_the_chip_for_small_models() {
        let mut rng = StdRng::seed_from_u64(6);
        let (model, x) = quantized_model(PrecisionAssignment::uniform(Precision::Int8), &mut rng);
        let d = Deployment::new(&model, Target::Maupiti).unwrap();
        let report = d.report(&x.data()[0..64]).unwrap();
        assert!(report.code_bytes <= 16 * 1024);
        assert!(report.data_bytes <= 16 * 1024);
        assert!(report.cycles > 0);
        assert!(report.instructions > 0);
    }

    #[test]
    fn oversized_models_are_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let (x, y) = toy_dataset(40, &mut rng);
        // The full seed network has ~76k parameters: far beyond 16 KB.
        let cfg = CnnConfig::seed();
        let mut net = cfg.build(&mut rng);
        let tc = TrainConfig {
            epochs: 1,
            batch_size: 32,
            learning_rate: 1e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
        let folded = fold_sequential(cfg, &net).unwrap();
        let qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
        let model = QuantizedCnn::from_qat(&qat);
        assert!(matches!(
            Deployment::new(&model, Target::Maupiti),
            Err(DeployError::DataTooLarge { .. })
        ));
    }
}
