//! Assembly emitters for the DNN kernel library.
//!
//! All kernels follow one calling convention (documented per emitter):
//! pointers and sizes in `a0..a7`, requantisation constants in `s2`/`s3`,
//! `t0..t6` and `s4..s11` are clobbered, return with `ret`.

use crate::asm::Assembler;
use pcount_isa::reg;
use pcount_quant::Precision;

/// Output encoding of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Requantised, packed activation at the given precision.
    Packed(Precision),
    /// Raw 32-bit accumulators (used for the final logits).
    Raw32,
}

/// A kernel specialisation: input activation/weight precision, output
/// encoding and whether the SDOTP SIMD instructions are available
/// (MAUPITI) or a scalar fallback must be used (vanilla IBEX).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelVariant {
    /// Precision of input activations and weights.
    pub input: Precision,
    /// Output encoding.
    pub output: OutputFormat,
    /// Use the SDOTP extension.
    pub simd: bool,
}

impl KernelVariant {
    /// A short unique label suffix for this variant.
    pub fn suffix(&self) -> String {
        let input = match self.input {
            Precision::Int8 => "i8",
            Precision::Int4 => "i4",
        };
        let output = match self.output {
            OutputFormat::Packed(Precision::Int8) => "o8",
            OutputFormat::Packed(Precision::Int4) => "o4",
            OutputFormat::Raw32 => "o32",
        };
        let simd = if self.simd { "simd" } else { "scalar" };
        format!("{input}_{output}_{simd}")
    }
}

/// Emits the inner channel (dot-product) loop.
///
/// Expects `t1` = activation pointer, `t2` = weight pointer, `a5` = bytes
/// per pixel/vector, accumulates into `s7`. Clobbers `t0, t3, t4, t5` and
/// advances `t1`/`t2`.
fn emit_channel_loop(asm: &mut Assembler, prefix: &str, input: Precision, simd: bool) {
    let loop_label = format!("{prefix}_ch");
    match (simd, input) {
        (true, Precision::Int8) => {
            asm.srli(reg::T3, reg::A5, 2);
            asm.label(&loop_label);
            asm.lw(reg::T4, reg::T1, 0);
            asm.lw(reg::T5, reg::T2, 0);
            asm.sdotp8(reg::S7, reg::T4, reg::T5);
            asm.addi(reg::T1, reg::T1, 4);
            asm.addi(reg::T2, reg::T2, 4);
            asm.addi(reg::T3, reg::T3, -1);
            asm.bne(reg::T3, reg::ZERO, &loop_label);
        }
        (true, Precision::Int4) => {
            asm.srli(reg::T3, reg::A5, 2);
            asm.label(&loop_label);
            asm.lw(reg::T4, reg::T1, 0);
            asm.lw(reg::T5, reg::T2, 0);
            asm.sdotp4(reg::S7, reg::T4, reg::T5);
            asm.addi(reg::T1, reg::T1, 4);
            asm.addi(reg::T2, reg::T2, 4);
            asm.addi(reg::T3, reg::T3, -1);
            asm.bne(reg::T3, reg::ZERO, &loop_label);
        }
        (false, Precision::Int8) => {
            asm.mv(reg::T3, reg::A5);
            asm.label(&loop_label);
            asm.lb(reg::T4, reg::T1, 0);
            asm.lb(reg::T5, reg::T2, 0);
            asm.mul(reg::T4, reg::T4, reg::T5);
            asm.add(reg::S7, reg::S7, reg::T4);
            asm.addi(reg::T1, reg::T1, 1);
            asm.addi(reg::T2, reg::T2, 1);
            asm.addi(reg::T3, reg::T3, -1);
            asm.bne(reg::T3, reg::ZERO, &loop_label);
        }
        (false, Precision::Int4) => {
            // Two channels per byte: sign-extend each nibble explicitly.
            // `gp` is used as an extra scratch register (the bare-metal
            // kernels have no runtime that reserves it) because every
            // temporary register is live in the surrounding convolution
            // loops.
            asm.mv(reg::T3, reg::A5);
            asm.label(&loop_label);
            asm.lb(reg::T4, reg::T1, 0);
            asm.lb(reg::T5, reg::T2, 0);
            // Low nibbles.
            asm.slli(reg::T0, reg::T4, 28);
            asm.srai(reg::T0, reg::T0, 28);
            asm.slli(reg::GP, reg::T5, 28);
            asm.srai(reg::GP, reg::GP, 28);
            asm.mul(reg::T0, reg::T0, reg::GP);
            asm.add(reg::S7, reg::S7, reg::T0);
            // High nibbles (the byte was sign-extended by lb).
            asm.srai(reg::T4, reg::T4, 4);
            asm.srai(reg::T5, reg::T5, 4);
            asm.mul(reg::T4, reg::T4, reg::T5);
            asm.add(reg::S7, reg::S7, reg::T4);
            asm.addi(reg::T1, reg::T1, 1);
            asm.addi(reg::T2, reg::T2, 1);
            asm.addi(reg::T3, reg::T3, -1);
            asm.bne(reg::T3, reg::ZERO, &loop_label);
        }
    }
}

/// Emits requantisation of the accumulator `s7` into `t0`:
/// `t0 = clamp(relu(round((s7 * s2) >> 16)), 0, s3)`.
fn emit_requant(asm: &mut Assembler, prefix: &str) {
    asm.mulh(reg::T0, reg::S7, reg::S2);
    asm.mul(reg::T1, reg::S7, reg::S2);
    asm.slli(reg::T0, reg::T0, 16);
    asm.srli(reg::T2, reg::T1, 16);
    asm.or(reg::T0, reg::T0, reg::T2);
    asm.srli(reg::T1, reg::T1, 15);
    asm.andi(reg::T1, reg::T1, 1);
    asm.add(reg::T0, reg::T0, reg::T1);
    // ReLU.
    let noneg = format!("{prefix}_noneg");
    asm.bge(reg::T0, reg::ZERO, &noneg);
    asm.li(reg::T0, 0);
    asm.label(&noneg);
    // Clamp at qmax (s3).
    let noclamp = format!("{prefix}_noclamp");
    asm.bge(reg::S3, reg::T0, &noclamp);
    asm.mv(reg::T0, reg::S3);
    asm.label(&noclamp);
}

/// Emits a packed activation store of the value in `t0` at element index
/// `t1` relative to base `a3`. Clobbers `t1, t2, t3`.
fn emit_store_packed(asm: &mut Assembler, prefix: &str, precision: Precision) {
    match precision {
        Precision::Int8 => {
            asm.add(reg::T1, reg::T1, reg::A3);
            asm.sb(reg::T0, reg::T1, 0);
        }
        Precision::Int4 => {
            let hi = format!("{prefix}_hi");
            let done = format!("{prefix}_stored");
            asm.andi(reg::T2, reg::T1, 1);
            asm.srli(reg::T1, reg::T1, 1);
            asm.add(reg::T1, reg::T1, reg::A3);
            asm.andi(reg::T0, reg::T0, 0xF);
            asm.bne(reg::T2, reg::ZERO, &hi);
            // Even channel: overwrite the byte (high nibble is filled by the
            // following odd channel or stays zero for padding).
            asm.sb(reg::T0, reg::T1, 0);
            asm.jump(&done);
            asm.label(&hi);
            asm.lbu(reg::T3, reg::T1, 0);
            asm.andi(reg::T3, reg::T3, 0x0F);
            asm.slli(reg::T0, reg::T0, 4);
            asm.or(reg::T3, reg::T3, reg::T0);
            asm.sb(reg::T3, reg::T1, 0);
            asm.label(&done);
        }
    }
}

/// Emits a sign-extended packed activation load: element index in `idx`,
/// base in `base`, result in `dst`. Clobbers `dst` and `scratch`.
fn emit_load_packed(
    asm: &mut Assembler,
    prefix: &str,
    precision: Precision,
    base: u8,
    idx: u8,
    dst: u8,
    scratch: u8,
) {
    match precision {
        Precision::Int8 => {
            asm.add(scratch, base, idx);
            asm.lb(dst, scratch, 0);
        }
        Precision::Int4 => {
            let hi = format!("{prefix}_lhi");
            let done = format!("{prefix}_ldone");
            asm.andi(dst, idx, 1);
            asm.srli(scratch, idx, 1);
            asm.add(scratch, scratch, base);
            asm.bne(dst, reg::ZERO, &hi);
            asm.lb(dst, scratch, 0);
            asm.slli(dst, dst, 28);
            asm.srai(dst, dst, 28);
            asm.jump(&done);
            asm.label(&hi);
            asm.lb(dst, scratch, 0);
            asm.srai(dst, dst, 4);
            asm.label(&done);
        }
    }
}

/// Emits a 3x3, stride-1, pad-1 convolution kernel named `name`.
///
/// Calling convention:
/// * `a0` input activations (channel-last, padded, packed)
/// * `a1` weights (`[out][ky][kx][in_pad]`, packed)
/// * `a2` 32-bit biases
/// * `a3` output activations (channel-last, padded, packed)
/// * `a4` spatial size (input == output)
/// * `a5` bytes per input pixel (= per weight tap)
/// * `a6` real output channels
/// * `a7` padded output channel stride (elements)
/// * `s2` requantisation multiplier, `s3` output clamp magnitude
pub fn emit_conv3x3(asm: &mut Assembler, name: &str, variant: KernelVariant) {
    let out_precision = match variant.output {
        OutputFormat::Packed(p) => p,
        OutputFormat::Raw32 => panic!("convolutions always produce packed activations"),
    };
    let p = format!("{name}_{}", variant.suffix());
    asm.label(name);
    asm.li(reg::S4, 0); // co
    asm.label(format!("{p}_co"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S4,
        reg::A6,
        format!("{p}_co_end"),
    );
    // bias -> s9
    asm.slli(reg::T0, reg::S4, 2);
    asm.add(reg::T0, reg::T0, reg::A2);
    asm.lw(reg::S9, reg::T0, 0);
    // w_co_base -> s10 = a1 + co * 9 * a5
    asm.li(reg::T0, 9);
    asm.mul(reg::T0, reg::T0, reg::A5);
    asm.mul(reg::T0, reg::T0, reg::S4);
    asm.add(reg::S10, reg::A1, reg::T0);
    asm.li(reg::S5, 0); // oy
    asm.label(format!("{p}_oy"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S5,
        reg::A4,
        format!("{p}_oy_end"),
    );
    asm.li(reg::S6, 0); // ox
    asm.label(format!("{p}_ox"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S6,
        reg::A4,
        format!("{p}_ox_end"),
    );
    asm.mv(reg::S7, reg::S9); // acc = bias
    asm.li(reg::S8, 0); // ky
    asm.label(format!("{p}_ky"));
    asm.li(reg::T0, 3);
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S8,
        reg::T0,
        format!("{p}_ky_end"),
    );
    // iy = oy + ky - 1, bounds check.
    asm.add(reg::S11, reg::S5, reg::S8);
    asm.addi(reg::S11, reg::S11, -1);
    asm.blt(reg::S11, reg::ZERO, format!("{p}_ky_next"));
    asm.bge(reg::S11, reg::A4, format!("{p}_ky_next"));
    asm.li(reg::T6, 0); // kx
    asm.label(format!("{p}_kx"));
    asm.li(reg::T0, 3);
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::T6,
        reg::T0,
        format!("{p}_kx_end"),
    );
    // ix = ox + kx - 1, bounds check.
    asm.add(reg::T0, reg::S6, reg::T6);
    asm.addi(reg::T0, reg::T0, -1);
    asm.blt(reg::T0, reg::ZERO, format!("{p}_kx_next"));
    asm.bge(reg::T0, reg::A4, format!("{p}_kx_next"));
    // x_ptr (t1) = a0 + (iy*H + ix) * a5
    asm.mul(reg::T1, reg::S11, reg::A4);
    asm.add(reg::T1, reg::T1, reg::T0);
    asm.mul(reg::T1, reg::T1, reg::A5);
    asm.add(reg::T1, reg::T1, reg::A0);
    // w_ptr (t2) = s10 + (ky*3 + kx) * a5
    asm.li(reg::T2, 3);
    asm.mul(reg::T2, reg::T2, reg::S8);
    asm.add(reg::T2, reg::T2, reg::T6);
    asm.mul(reg::T2, reg::T2, reg::A5);
    asm.add(reg::T2, reg::T2, reg::S10);
    emit_channel_loop(asm, &format!("{p}_k{}", "x"), variant.input, variant.simd);
    asm.label(format!("{p}_kx_next"));
    asm.addi(reg::T6, reg::T6, 1);
    asm.jump(format!("{p}_kx"));
    asm.label(format!("{p}_kx_end"));
    asm.label(format!("{p}_ky_next"));
    asm.addi(reg::S8, reg::S8, 1);
    asm.jump(format!("{p}_ky"));
    asm.label(format!("{p}_ky_end"));
    // Requantise and store at element index (oy*H + ox) * a7 + co.
    emit_requant(asm, &format!("{p}_rq"));
    asm.mul(reg::T1, reg::S5, reg::A4);
    asm.add(reg::T1, reg::T1, reg::S6);
    asm.mul(reg::T1, reg::T1, reg::A7);
    asm.add(reg::T1, reg::T1, reg::S4);
    emit_store_packed(asm, &format!("{p}_st"), out_precision);
    asm.addi(reg::S6, reg::S6, 1);
    asm.jump(format!("{p}_ox"));
    asm.label(format!("{p}_ox_end"));
    asm.addi(reg::S5, reg::S5, 1);
    asm.jump(format!("{p}_oy"));
    asm.label(format!("{p}_oy_end"));
    asm.addi(reg::S4, reg::S4, 1);
    asm.jump(format!("{p}_co"));
    asm.label(format!("{p}_co_end"));
    asm.ret();
}

/// Emits a fully connected kernel named `name`.
///
/// Calling convention:
/// * `a0` input activation vector (padded, packed)
/// * `a1` weights (`[out][in_pad]`, packed)
/// * `a2` 32-bit biases
/// * `a3` output (packed activations or raw 32-bit words)
/// * `a4` real output features
/// * `a5` bytes of the input vector
/// * `s2`/`s3` requantisation constants (ignored for [`OutputFormat::Raw32`])
pub fn emit_fc(asm: &mut Assembler, name: &str, variant: KernelVariant) {
    let p = format!("{name}_{}", variant.suffix());
    asm.label(name);
    asm.li(reg::S4, 0); // o
    asm.label(format!("{p}_o"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S4,
        reg::A4,
        format!("{p}_o_end"),
    );
    // acc = bias[o]
    asm.slli(reg::T0, reg::S4, 2);
    asm.add(reg::T0, reg::T0, reg::A2);
    asm.lw(reg::S7, reg::T0, 0);
    // x_ptr = a0, w_ptr = a1 + o * a5
    asm.mv(reg::T1, reg::A0);
    asm.mul(reg::T2, reg::S4, reg::A5);
    asm.add(reg::T2, reg::T2, reg::A1);
    emit_channel_loop(asm, &format!("{p}_dot"), variant.input, variant.simd);
    match variant.output {
        OutputFormat::Packed(out_precision) => {
            emit_requant(asm, &format!("{p}_rq"));
            asm.mv(reg::T1, reg::S4);
            emit_store_packed(asm, &format!("{p}_st"), out_precision);
        }
        OutputFormat::Raw32 => {
            asm.slli(reg::T1, reg::S4, 2);
            asm.add(reg::T1, reg::T1, reg::A3);
            asm.sw(reg::S7, reg::T1, 0);
        }
    }
    asm.addi(reg::S4, reg::S4, 1);
    asm.jump(format!("{p}_o"));
    asm.label(format!("{p}_o_end"));
    asm.ret();
}

/// Emits a 2x2, stride-2 max-pooling kernel named `name`.
///
/// Calling convention:
/// * `a0` input activations (channel-last, padded, packed)
/// * `a1` output activations (same channel layout, half the spatial size)
/// * `a4` input spatial size
/// * `a5` padded channel count (elements)
pub fn emit_maxpool2x2(asm: &mut Assembler, name: &str, precision: Precision) {
    let p = format!(
        "{name}_{}",
        match precision {
            Precision::Int8 => "i8",
            Precision::Int4 => "i4",
        }
    );
    asm.label(name);
    asm.srli(reg::T6, reg::A4, 1); // output spatial size
    asm.li(reg::S4, 0); // oy
    asm.label(format!("{p}_py"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S4,
        reg::T6,
        format!("{p}_py_end"),
    );
    asm.li(reg::S5, 0); // ox
    asm.label(format!("{p}_px"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S5,
        reg::T6,
        format!("{p}_px_end"),
    );
    asm.li(reg::S6, 0); // c
    asm.label(format!("{p}_pc"));
    asm.branch(
        pcount_isa::BranchOp::Bge,
        reg::S6,
        reg::A5,
        format!("{p}_pc_end"),
    );
    // Best value accumulates in s7.
    asm.li(reg::S7, -1000);
    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        let tag = format!("{p}_e{dy}{dx}");
        // element index = ((2*oy + dy) * H + (2*ox + dx)) * C + c  -> s9
        asm.slli(reg::S8, reg::S4, 1);
        asm.addi(reg::S8, reg::S8, dy);
        asm.mul(reg::S8, reg::S8, reg::A4);
        asm.slli(reg::S9, reg::S5, 1);
        asm.addi(reg::S9, reg::S9, dx);
        asm.add(reg::S8, reg::S8, reg::S9);
        asm.mul(reg::S8, reg::S8, reg::A5);
        asm.add(reg::S8, reg::S8, reg::S6);
        emit_load_packed(asm, &tag, precision, reg::A0, reg::S8, reg::S9, reg::S10);
        // s7 = max(s7, s9)
        let skip = format!("{tag}_skip");
        asm.bge(reg::S7, reg::S9, &skip);
        asm.mv(reg::S7, reg::S9);
        asm.label(&skip);
    }
    // Output element index = (oy*Hout + ox) * C + c -> t1, value in t0.
    asm.mv(reg::T0, reg::S7);
    asm.mul(reg::T1, reg::S4, reg::T6);
    asm.add(reg::T1, reg::T1, reg::S5);
    asm.mul(reg::T1, reg::T1, reg::A5);
    asm.add(reg::T1, reg::T1, reg::S6);
    // The store helper expects the output base in a3: pooling writes to a1,
    // so temporarily swap (a3 is caller-saved between kernel calls).
    asm.mv(reg::A3, reg::A1);
    emit_store_packed(asm, &format!("{p}_st"), precision);
    asm.addi(reg::S6, reg::S6, 1);
    asm.jump(format!("{p}_pc"));
    asm.label(format!("{p}_pc_end"));
    asm.addi(reg::S5, reg::S5, 1);
    asm.jump(format!("{p}_px"));
    asm.label(format!("{p}_px_end"));
    asm.addi(reg::S4, reg::S4, 1);
    asm.jump(format!("{p}_py"));
    asm.label(format!("{p}_py_end"));
    asm.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcount_isa::{Cpu, DMEM_BASE};

    /// Runs a single FC layer through the emitted kernel and checks it
    /// against a scalar host computation.
    fn check_fc(variant: KernelVariant) {
        let in_features: usize = match variant.input {
            Precision::Int8 => 12,
            Precision::Int4 => 16,
        };
        let out_features = 3usize;
        // Deterministic small test vectors within the precision's range.
        let qmax = variant.input.qmax();
        let x: Vec<i8> = (0..in_features)
            .map(|i| (((i as i32 * 3 + 1) % (2 * qmax + 1)) - qmax) as i8)
            .collect();
        let w: Vec<i8> = (0..in_features * out_features)
            .map(|i| (((i as i32 * 7 + 2) % (2 * qmax + 1)) - qmax) as i8)
            .collect();
        let bias: Vec<i32> = vec![5, -3, 100];
        let mult = 1 << 14; // effective scale 0.25
        let out_qmax = match variant.output {
            OutputFormat::Packed(p) => p.qmax(),
            OutputFormat::Raw32 => 0,
        };

        // Host golden model replicating the kernel arithmetic.
        let golden: Vec<i32> = (0..out_features)
            .map(|o| {
                let mut acc = bias[o];
                for i in 0..in_features {
                    acc += x[i] as i32 * w[o * in_features + i] as i32;
                }
                match variant.output {
                    OutputFormat::Raw32 => acc,
                    OutputFormat::Packed(p) => {
                        let rq = pcount_quant::RequantParams {
                            mult,
                            shift: pcount_quant::RequantParams::SHIFT,
                        };
                        rq.apply(acc).max(0).min(out_qmax).min(p.qmax())
                    }
                }
            })
            .collect();

        // Assemble: main sets up registers and calls the kernel.
        let x_addr = DMEM_BASE;
        let w_addr = DMEM_BASE + 64;
        let b_addr = DMEM_BASE + 512;
        let o_addr = DMEM_BASE + 600;
        let x_packed = crate::layout::pack_values(&x, variant.input);
        let w_packed = crate::layout::pack_values(&w, variant.input);
        let in_bytes = x_packed.len();

        let mut asm = Assembler::new();
        asm.li(reg::A0, x_addr as i32);
        asm.li(reg::A1, w_addr as i32);
        asm.li(reg::A2, b_addr as i32);
        asm.li(reg::A3, o_addr as i32);
        asm.li(reg::A4, out_features as i32);
        asm.li(reg::A5, in_bytes as i32);
        asm.li(reg::S2, mult);
        asm.li(reg::S3, out_qmax);
        asm.call("fc");
        asm.ebreak();
        emit_fc(&mut asm, "fc", variant);
        let program = asm.assemble().unwrap();

        let mut cpu = Cpu::new_default();
        cpu.load_program(&program).unwrap();
        cpu.mem.write_dmem(x_addr, &x_packed);
        cpu.mem.write_dmem(w_addr, &w_packed);
        let bias_bytes: Vec<u8> = bias.iter().flat_map(|b| b.to_le_bytes()).collect();
        cpu.mem.write_dmem(b_addr, &bias_bytes);
        cpu.run(1_000_000).unwrap();

        match variant.output {
            OutputFormat::Raw32 => {
                for (o, &expected) in golden.iter().enumerate() {
                    let bytes = cpu.mem.read_dmem(o_addr + 4 * o as u32, 4);
                    let got = i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                    assert_eq!(got, expected, "output {o} ({variant:?})");
                }
            }
            OutputFormat::Packed(Precision::Int8) => {
                for (o, &expected) in golden.iter().enumerate() {
                    let got = cpu.mem.read_dmem(o_addr + o as u32, 1)[0] as i8 as i32;
                    assert_eq!(got, expected, "output {o} ({variant:?})");
                }
            }
            OutputFormat::Packed(Precision::Int4) => {
                for (o, &expected) in golden.iter().enumerate() {
                    let byte = cpu.mem.read_dmem(o_addr + (o / 2) as u32, 1)[0];
                    let nibble = if o % 2 == 0 { byte & 0xF } else { byte >> 4 };
                    let got = if nibble >= 8 {
                        nibble as i32 - 16
                    } else {
                        nibble as i32
                    };
                    assert_eq!(got, expected, "output {o} ({variant:?})");
                }
            }
        }
        // SDOTP instructions appear exactly when SIMD is requested.
        assert_eq!(variant.simd, cpu.trace.sdotp_count() > 0);
    }

    #[test]
    fn fc_int8_simd_matches_host() {
        check_fc(KernelVariant {
            input: Precision::Int8,
            output: OutputFormat::Raw32,
            simd: true,
        });
    }

    #[test]
    fn fc_int8_scalar_matches_host() {
        check_fc(KernelVariant {
            input: Precision::Int8,
            output: OutputFormat::Packed(Precision::Int8),
            simd: false,
        });
    }

    #[test]
    fn fc_int4_simd_matches_host() {
        check_fc(KernelVariant {
            input: Precision::Int4,
            output: OutputFormat::Packed(Precision::Int8),
            simd: true,
        });
    }

    #[test]
    fn fc_int4_scalar_matches_host() {
        check_fc(KernelVariant {
            input: Precision::Int4,
            output: OutputFormat::Packed(Precision::Int4),
            simd: false,
        });
    }

    #[test]
    fn fc_int8_simd_packed_int4_output() {
        check_fc(KernelVariant {
            input: Precision::Int8,
            output: OutputFormat::Packed(Precision::Int4),
            simd: true,
        });
    }

    #[test]
    fn simd_and_scalar_fc_produce_identical_results() {
        // Already covered indirectly: both are compared against the same
        // golden; this test makes the equivalence explicit for INT8/raw.
        check_fc(KernelVariant {
            input: Precision::Int8,
            output: OutputFormat::Raw32,
            simd: false,
        });
    }
}
