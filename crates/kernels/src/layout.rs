//! Memory layout and packing of activations and weights.

use pcount_isa::DMEM_BASE;
use pcount_quant::{Precision, QuantizedCnn, QuantizedLayer};

/// Number of values processed by one SDOTP instruction at a precision.
pub fn lane_count(precision: Precision) -> usize {
    match precision {
        Precision::Int8 => 4,
        Precision::Int4 => 8,
    }
}

/// Rounds a channel count up to the SIMD lane multiple of a precision.
pub fn pad_channels(channels: usize, precision: Precision) -> usize {
    let lanes = lane_count(precision);
    channels.div_ceil(lanes) * lanes
}

/// Packs signed values into bytes: one per byte for INT8, two per byte
/// (low nibble first) for INT4.
pub fn pack_values(values: &[i8], precision: Precision) -> Vec<u8> {
    match precision {
        Precision::Int8 => values.iter().map(|&v| v as u8).collect(),
        Precision::Int4 => {
            let mut out = vec![0u8; values.len().div_ceil(2)];
            for (i, &v) in values.iter().enumerate() {
                let nibble = (v as u8) & 0xF;
                if i % 2 == 0 {
                    out[i / 2] = nibble;
                } else {
                    out[i / 2] |= nibble << 4;
                }
            }
            out
        }
    }
}

fn align4(x: usize) -> usize {
    x.div_ceil(4) * 4
}

/// Padded channel geometry of a deployed model.
///
/// Every activation tensor is stored channel-last with its channel count
/// padded to the lane multiple of the precision of the *consuming* layer,
/// so the SIMD inner loops never need leftover handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Input spatial size (8).
    pub h: usize,
    /// Spatial size after pooling (4).
    pub pooled: usize,
    /// Padded input channels (consumed by conv1).
    pub cin_pad: usize,
    /// conv1 output channels (real).
    pub c1: usize,
    /// conv1 output channels padded for conv2's precision.
    pub c1_pad: usize,
    /// conv2 output channels (real).
    pub c2: usize,
    /// conv2 output channels padded for fc1's precision.
    pub c2_pad: usize,
    /// fc1 output features (real).
    pub f1: usize,
    /// fc1 output features padded for fc2's precision.
    pub f1_pad: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Geometry {
    /// Derives the geometry of a quantised model.
    pub fn of(model: &QuantizedCnn) -> Self {
        let p = model.assignment.layers();
        let cfg = &model.config;
        Self {
            h: cfg.input_size,
            pooled: cfg.pooled_size(),
            cin_pad: pad_channels(cfg.input_channels, p[0]),
            c1: cfg.conv1_out,
            c1_pad: pad_channels(cfg.conv1_out, p[1]),
            c2: cfg.conv2_out,
            c2_pad: pad_channels(cfg.conv2_out, p[2]),
            f1: cfg.fc1_out,
            f1_pad: pad_channels(cfg.fc1_out, p[3]),
            classes: cfg.num_classes,
        }
    }
}

/// Placement of every data object inside the MAUPITI data memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Padded channel geometry.
    pub geometry: Geometry,
    /// Address of the quantised input frame buffer.
    pub input_addr: u32,
    /// Bytes of the input buffer.
    pub input_bytes: usize,
    /// Weight base address per parameterised layer.
    pub weight_addr: [u32; 4],
    /// Bias base address per parameterised layer.
    pub bias_addr: [u32; 4],
    /// First ping-pong activation buffer.
    pub buf_a_addr: u32,
    /// Second ping-pong activation buffer.
    pub buf_b_addr: u32,
    /// Size of each activation buffer in bytes.
    pub act_buf_bytes: usize,
    /// Address of the 32-bit output logits.
    pub logits_addr: u32,
    /// Bytes occupied by weights and biases.
    pub weight_bytes: usize,
    /// Total data-memory bytes used (weights, activations, input, logits).
    pub total_bytes: usize,
    /// Packed weight/bias image, to be copied to `weight_addr[0]` onwards.
    pub weight_image: Vec<u8>,
}

impl MemoryPlan {
    /// Lays out a quantised model into data memory starting at `DMEM_BASE`.
    pub fn new(model: &QuantizedCnn) -> Self {
        let geo = Geometry::of(model);
        let p = model.assignment.layers();

        // Packed weight blobs in layer order.
        let w1 = pack_conv_weights(&model.layers[0], geo.cin_pad, p[0]);
        let w2 = pack_conv_weights(&model.layers[1], geo.c1_pad, p[1]);
        let w3 = pack_fc1_weights(&model.layers[2], geo.c2, geo.c2_pad, geo.pooled, p[2]);
        let w4 = pack_fc_weights(&model.layers[3], geo.f1, geo.f1_pad, p[3]);
        let blobs = [w1, w2, w3, w4];

        let mut image = Vec::new();
        let mut weight_addr = [0u32; 4];
        let mut bias_addr = [0u32; 4];
        let base = DMEM_BASE;
        for (i, blob) in blobs.iter().enumerate() {
            weight_addr[i] = base + image.len() as u32;
            image.extend_from_slice(blob);
            while image.len() % 4 != 0 {
                image.push(0);
            }
            bias_addr[i] = base + image.len() as u32;
            for &b in &model.layers[i].bias_q {
                image.extend_from_slice(&b.to_le_bytes());
            }
        }
        let weight_bytes = image.len();

        // Activation buffers (channel-last, padded, packed).
        let conv1_out_bytes = p[1].storage_bytes(geo.h * geo.h * geo.c1_pad);
        let pool_out_bytes = p[1].storage_bytes(geo.pooled * geo.pooled * geo.c1_pad);
        let conv2_out_bytes = p[2].storage_bytes(geo.pooled * geo.pooled * geo.c2_pad);
        let fc1_out_bytes = p[3].storage_bytes(geo.f1_pad);
        let act_buf_bytes = align4(
            conv1_out_bytes
                .max(pool_out_bytes)
                .max(conv2_out_bytes)
                .max(fc1_out_bytes),
        );
        let input_bytes = align4(p[0].storage_bytes(geo.h * geo.h * geo.cin_pad));

        let input_addr = base + align4(weight_bytes) as u32;
        let buf_a_addr = input_addr + input_bytes as u32;
        let buf_b_addr = buf_a_addr + act_buf_bytes as u32;
        let logits_addr = buf_b_addr + act_buf_bytes as u32;
        let total_bytes = (logits_addr - base) as usize + geo.classes * 4;

        Self {
            geometry: geo,
            input_addr,
            input_bytes,
            weight_addr,
            bias_addr,
            buf_a_addr,
            buf_b_addr,
            act_buf_bytes,
            logits_addr,
            weight_bytes,
            total_bytes,
            weight_image: image,
        }
    }

    /// Quantises and packs one ambient-normalised 8x8 frame into the input
    /// buffer layout (channel-last with padded channels).
    pub fn pack_input(&self, model: &QuantizedCnn, frame: &[f32]) -> Vec<u8> {
        let geo = &self.geometry;
        let p = model.assignment.layers()[0];
        let q = model.quantize_input(frame);
        // Real layout is CHW with a single channel; spread into HWC padded.
        let mut values = vec![0i8; geo.h * geo.h * geo.cin_pad];
        for pix in 0..geo.h * geo.h {
            values[pix * geo.cin_pad] = q[pix];
        }
        let mut packed = pack_values(&values, p);
        packed.resize(self.input_bytes, 0);
        packed
    }
}

/// Reorders a convolution weight tensor from `[out][in][ky][kx]` to the
/// channel-last deployed layout `[out][ky][kx][in_pad]` and packs it.
pub(crate) fn pack_conv_weights(
    layer: &QuantizedLayer,
    in_pad: usize,
    precision: Precision,
) -> Vec<u8> {
    let k = layer.kernel;
    let (out_c, in_c) = (layer.out_features, layer.in_features);
    let mut values = vec![0i8; out_c * k * k * in_pad];
    for co in 0..out_c {
        for ci in 0..in_c {
            for ky in 0..k {
                for kx in 0..k {
                    let src = ((co * in_c + ci) * k + ky) * k + kx;
                    let dst = ((co * k + ky) * k + kx) * in_pad + ci;
                    values[dst] = layer.weight_q[src];
                }
            }
        }
    }
    pack_values(&values, precision)
}

/// Reorders fc1 weights from the golden CHW-flatten order
/// (`c * pooled^2 + pos`) to the deployed HWC-flatten order
/// (`pos * c_pad + c`) and packs them.
pub(crate) fn pack_fc1_weights(
    layer: &QuantizedLayer,
    c_real: usize,
    c_pad: usize,
    pooled: usize,
    precision: Precision,
) -> Vec<u8> {
    let positions = pooled * pooled;
    assert_eq!(layer.in_features, c_real * positions, "fc1 input mismatch");
    let mut values = vec![0i8; layer.out_features * positions * c_pad];
    for o in 0..layer.out_features {
        for c in 0..c_real {
            for pos in 0..positions {
                let src = o * layer.in_features + c * positions + pos;
                let dst = o * positions * c_pad + pos * c_pad + c;
                values[dst] = layer.weight_q[src];
            }
        }
    }
    pack_values(&values, precision)
}

/// Pads a plain fully connected weight matrix to `in_pad` inputs and packs
/// it.
pub(crate) fn pack_fc_weights(
    layer: &QuantizedLayer,
    in_real: usize,
    in_pad: usize,
    precision: Precision,
) -> Vec<u8> {
    assert_eq!(layer.in_features, in_real, "fc input mismatch");
    let mut values = vec![0i8; layer.out_features * in_pad];
    for o in 0..layer.out_features {
        for i in 0..in_real {
            values[o * in_pad + i] = layer.weight_q[o * in_real + i];
        }
    }
    pack_values(&values, precision)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_and_padding_rules() {
        assert_eq!(lane_count(Precision::Int8), 4);
        assert_eq!(lane_count(Precision::Int4), 8);
        assert_eq!(pad_channels(1, Precision::Int8), 4);
        assert_eq!(pad_channels(4, Precision::Int8), 4);
        assert_eq!(pad_channels(5, Precision::Int8), 8);
        assert_eq!(pad_channels(3, Precision::Int4), 8);
        assert_eq!(pad_channels(8, Precision::Int4), 8);
        assert_eq!(pad_channels(9, Precision::Int4), 16);
    }

    #[test]
    fn int8_packing_is_identity_bytes() {
        let values = [1i8, -1, 127, -128];
        let packed = pack_values(&values, Precision::Int8);
        assert_eq!(packed, vec![1, 0xFF, 127, 0x80]);
    }

    #[test]
    fn int4_packing_puts_even_indices_in_low_nibbles() {
        let values = [1i8, -1, 7, -8];
        let packed = pack_values(&values, Precision::Int4);
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[0], 0xF1); // low nibble 1, high nibble 0xF (-1)
        assert_eq!(packed[1], 0x87); // low 7, high 0x8 (-8)
    }

    #[test]
    fn int4_packing_handles_odd_length() {
        let packed = pack_values(&[3i8, 2, 1], Precision::Int4);
        assert_eq!(packed, vec![0x23, 0x01]);
    }

    #[test]
    fn conv_weight_reorder_is_channel_last() {
        let layer = QuantizedLayer {
            precision: Precision::Int8,
            out_features: 1,
            in_features: 2,
            kernel: 3,
            // weight[0][ci][ky][kx] = 10*ci + (ky*3+kx)
            weight_q: (0..2)
                .flat_map(|ci| (0..9).map(move |p| (10 * ci + p) as i8))
                .collect(),
            bias_q: vec![0],
            requant: None,
            out_precision: None,
            relu: false,
            in_scale: 1.0,
            w_scale: 1.0,
            out_scale: 1.0,
        };
        let packed = pack_conv_weights(&layer, 4, Precision::Int8);
        assert_eq!(packed.len(), 9 * 4);
        // Position (ky=0, kx=0): channels [0, 10, pad, pad].
        assert_eq!(&packed[0..4], &[0, 10, 0, 0]);
        // Position (ky=1, kx=2) = tap 5: channels [5, 15, 0, 0].
        assert_eq!(&packed[5 * 4..5 * 4 + 4], &[5, 15, 0, 0]);
    }

    #[test]
    fn fc1_weight_reorder_transposes_channel_and_position() {
        // 1 output, 2 channels, 2x2 pooled map (4 positions).
        let layer = QuantizedLayer {
            precision: Precision::Int8,
            out_features: 1,
            in_features: 8,
            kernel: 1,
            // golden order: c*4 + pos -> value = 10*c + pos
            weight_q: (0..2)
                .flat_map(|c| (0..4).map(move |pos| (10 * c + pos) as i8))
                .collect(),
            bias_q: vec![0],
            requant: None,
            out_precision: None,
            relu: false,
            in_scale: 1.0,
            w_scale: 1.0,
            out_scale: 1.0,
        };
        let packed = pack_fc1_weights(&layer, 2, 4, 2, Precision::Int8);
        assert_eq!(packed.len(), 4 * 4);
        // Position 0: [c0 pos0, c1 pos0, pad, pad] = [0, 10, 0, 0]
        assert_eq!(&packed[0..4], &[0, 10, 0, 0]);
        // Position 3: [3, 13, 0, 0]
        assert_eq!(&packed[12..16], &[3, 13, 0, 0]);
    }
}
