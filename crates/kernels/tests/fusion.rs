//! Deployed-CNN bit-identity suite for macro-op fusion.
//!
//! The block-cached engine's fused loop executor must be architecturally
//! and *micro-architecturally* invisible: on the real deployed CNN,
//! fusion on and fusion off must produce the same logits, instruction
//! counts, cycle counts, pipeline stall breakdowns and memory-hierarchy
//! stats — across both targets, both memory models, chained and
//! unchained superblocks, serial and pooled execution, and watchdog
//! budgets that expire in the middle of a fused loop.

use pcount_kernels::{Deployment, ExecMode, MemoryModel, SimError, Target, INSTRUCTION_BUDGET};
use pcount_nn::{CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small trained + quantised CNN and a batch of sample frames.
fn deployed_model(seed: u64, precision: Precision) -> (QuantizedCnn, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 24usize;
    let mut x = Tensor::zeros(&[n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..4usize);
        x.set(&[i, 0, 2 + class, 3], 3.0);
        for h in 0..8 {
            for w in 0..8 {
                let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                x.set(&[i, 0, h, w], v);
            }
        }
        y.push(class);
    }
    let cfg = CnnConfig::seed().with_channels(6, 6, 12);
    let mut net = cfg.build(&mut rng);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
    let folded = fold_sequential(cfg, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(precision));
    qat.calibrate(&x);
    (QuantizedCnn::from_qat(&qat), x)
}

fn deployment(
    model: &QuantizedCnn,
    target: Target,
    mode: ExecMode,
    mem: MemoryModel,
    chaining: bool,
    fusion: bool,
) -> Deployment {
    let mut d = Deployment::new(model, target).expect("deploy");
    d.set_exec_mode(mode);
    d.set_memory_model(mem);
    d.set_superblock_chaining(chaining);
    d.set_macro_fusion(fusion);
    d
}

#[test]
fn fusion_is_bit_identical_on_the_deployed_cnn_in_every_engine_combination() {
    let (model, x) = deployed_model(31, Precision::Int8);
    for target in [Target::Maupiti, Target::Ibex] {
        let fresh = Deployment::new(&model, target).expect("deploy");
        assert!(fresh.macro_fusion(), "fusion is on by default");
        for mem in [MemoryModel::Flat, MemoryModel::maupiti()] {
            let simple = deployment(&model, target, ExecMode::Simple, mem, true, true);
            for chaining in [true, false] {
                let fused = deployment(&model, target, ExecMode::BlockCached, mem, chaining, true);
                let unfused =
                    deployment(&model, target, ExecMode::BlockCached, mem, chaining, false);
                for i in 0..3 {
                    let frame = &x.data()[i * 64..(i + 1) * 64];
                    let rs = simple.run_frame(frame).expect("simple");
                    let rf = fused.run_frame(frame).expect("fused");
                    let ru = unfused.run_frame(frame).expect("unfused");
                    // Complete run equality — logits, prediction, cycles,
                    // instret, sdotp count, stall breakdowns, mem stats.
                    assert_eq!(
                        rf, ru,
                        "{target} {mem:?} chaining={chaining} frame {i}: fusion perturbed the run"
                    );
                    assert_eq!(rs.logits, rf.logits);
                    assert_eq!(rs.instructions, rf.instructions);
                    assert_eq!(rs.sdotp, rf.sdotp);
                    assert_eq!(rs.mem, rf.mem, "mem stats are engine-independent");
                }
            }
        }
    }
}

#[test]
fn fusion_is_bit_identical_for_4bit_models_and_pooled_batches() {
    let (model, x) = deployed_model(32, Precision::Int4);
    let n = 8usize;
    let batch = Tensor::from_vec(x.data()[..n * 64].to_vec(), &[n, 1, 8, 8]);
    let fused = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::maupiti(),
        true,
        true,
    );
    let unfused = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::maupiti(),
        true,
        false,
    );
    let serial: Vec<_> = (0..n)
        .map(|i| {
            unfused
                .run_frame(&batch.data()[i * 64..(i + 1) * 64])
                .expect("serial unfused")
        })
        .collect();
    for threads in [1usize, 4] {
        let pool = fused.make_pool(threads).expect("pool");
        let parallel = fused.run_batch(&batch, &pool).expect("batch");
        assert_eq!(
            parallel, serial,
            "{threads}-wide fused pool diverged from the serial unfused runs"
        );
    }
}

#[test]
fn fusion_fires_on_the_deployed_cnn_and_attribution_stays_consistent() {
    let (model, x) = deployed_model(33, Precision::Int8);
    let d = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::Flat,
        true,
        true,
    );
    let frame = &x.data()[..64];
    let run = d.run_frame(frame).expect("run");
    let hot = d.hottest_blocks(frame, 32).expect("profile");
    // The MAC channel loops dominate the deployed CNN; they must be
    // recognised and actually executed through the fused path.
    let fused_blocks: Vec<_> = hot.iter().filter(|b| b.fused_kind.is_some()).collect();
    assert!(
        !fused_blocks.is_empty(),
        "no fused traces on the deployed CNN"
    );
    assert!(
        fused_blocks
            .iter()
            .any(|b| b.fused_kind == Some("mac_sdotp8")),
        "the SDOTP channel loop idiom must fuse: {fused_blocks:?}"
    );
    let fused_iters: u64 = fused_blocks.iter().map(|b| b.fused_iterations).sum();
    assert!(fused_iters > 100, "fusion barely fired: {fused_iters}");
    // Attribution invariants survive fusion: per-block retired
    // instructions still sum to the whole inference, and fused cycles
    // stay within each block's share of the run.
    let attributed: u64 = hot.iter().map(|b| b.instructions).sum();
    assert_eq!(attributed, run.instructions);
    let fused_cycles: u64 = fused_blocks.iter().map(|b| b.fused_cycles).sum();
    assert!(fused_cycles > 0);
    assert!(fused_cycles < run.cycles);
}

#[test]
fn watchdog_expiry_mid_fused_loop_is_bit_identical() {
    let (model, x) = deployed_model(34, Precision::Int8);
    let frame = &x.data()[..64];
    let full = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::Flat,
        true,
        true,
    )
    .run_frame(frame)
    .expect("full run");
    // Budgets landing all over the inference, including deep inside the
    // conv MAC loops.
    for budget in [500u64, 2_000, full.instructions / 2, full.instructions - 1] {
        let mut cpus: Vec<_> = (0..2)
            .map(|fusion| {
                let d = deployment(
                    &model,
                    Target::Maupiti,
                    ExecMode::BlockCached,
                    MemoryModel::Flat,
                    true,
                    fusion == 1,
                );
                let mut pool = d.make_pool(1).expect("pool");
                let (_, slots) = pool.split_mut();
                let err = d
                    .run_frame_with_budget(&mut slots[0], frame, budget)
                    .expect_err("reduced budget must time out");
                assert_eq!(
                    err,
                    SimError::Timeout {
                        max_instructions: budget
                    }
                );
                slots[0].clone()
            })
            .collect();
        let (unfused, fused) = (cpus.remove(0), cpus.remove(0));
        for r in 0..32 {
            assert_eq!(unfused.reg(r), fused.reg(r), "budget {budget}: x{r}");
        }
        assert_eq!(unfused.pc, fused.pc, "budget {budget}: pc diverged");
        assert_eq!(unfused.instret, fused.instret, "budget {budget}");
        assert_eq!(unfused.cycles, fused.cycles, "budget {budget}");
        assert_eq!(unfused.trace, fused.trace, "budget {budget}");
        let len = fused.mem.dmem_size();
        assert_eq!(
            unfused.mem.read_dmem(pcount_isa::DMEM_BASE, len),
            fused.mem.read_dmem(pcount_isa::DMEM_BASE, len),
            "budget {budget}: torn memory images diverged"
        );
    }
    // Sanity: the default budget finishes.
    let d = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::Flat,
        true,
        true,
    );
    let mut pool = d.make_pool(1).expect("pool");
    let (_, slots) = pool.split_mut();
    let ok = d
        .run_frame_with_budget(&mut slots[0], frame, INSTRUCTION_BUDGET)
        .expect("default budget");
    assert_eq!(ok, full);
}
