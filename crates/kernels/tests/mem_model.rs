//! Deployed-CNN bit-identity suite for the memory-hierarchy seam.
//!
//! `MemoryModel::Flat` (the default) must reproduce the pre-seam cycle
//! accounting bit-for-bit on the real deployed workload: the reference
//! interpreter's flat per-op costs in `ExecMode::Simple`, plus exactly
//! the load-use interlock stalls on top of them in
//! `ExecMode::BlockCached`, identical with and without superblock
//! chaining. `MemoryModel::Maupiti` must leave every architectural result
//! untouched while charging a strictly positive, engine-independent stall
//! breakdown.

use pcount_kernels::{Deployment, ExecMode, MemoryModel, Target};
use pcount_nn::{CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small trained + quantised CNN and a batch of sample frames.
fn deployed_model(seed: u64) -> (QuantizedCnn, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 24usize;
    let mut x = Tensor::zeros(&[n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..4usize);
        x.set(&[i, 0, 2 + class, 3], 3.0);
        for h in 0..8 {
            for w in 0..8 {
                let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                x.set(&[i, 0, h, w], v);
            }
        }
        y.push(class);
    }
    let cfg = CnnConfig::seed().with_channels(6, 6, 12);
    let mut net = cfg.build(&mut rng);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
    let folded = fold_sequential(cfg, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x);
    (QuantizedCnn::from_qat(&qat), x)
}

fn deployment(
    model: &QuantizedCnn,
    target: Target,
    mode: ExecMode,
    mem: MemoryModel,
    chaining: bool,
) -> Deployment {
    let mut d = Deployment::new(model, target).expect("deploy");
    d.set_exec_mode(mode);
    d.set_memory_model(mem);
    d.set_superblock_chaining(chaining);
    d
}

#[test]
fn flat_model_reproduces_pre_seam_cycles_in_every_engine_combination() {
    let (model, x) = deployed_model(20);
    for target in [Target::Maupiti, Target::Ibex] {
        let fresh = Deployment::new(&model, target).expect("deploy");
        assert!(fresh.memory_model().is_flat(), "Flat is the default model");
        let simple = deployment(&model, target, ExecMode::Simple, MemoryModel::Flat, true);
        let chained = deployment(
            &model,
            target,
            ExecMode::BlockCached,
            MemoryModel::Flat,
            true,
        );
        let unchained = deployment(
            &model,
            target,
            ExecMode::BlockCached,
            MemoryModel::Flat,
            false,
        );
        for i in 0..4 {
            let frame = &x.data()[i * 64..(i + 1) * 64];
            let rs = simple.run_frame(frame).expect("simple");
            let rc = chained.run_frame(frame).expect("chained");
            let ru = unchained.run_frame(frame).expect("unchained");
            // Architectural identity across all three execution paths.
            assert_eq!(rs.logits, rc.logits, "{target} frame {i}");
            assert_eq!(rs.instructions, rc.instructions);
            assert_eq!(rs.sdotp, rc.sdotp);
            assert_eq!(rc, ru, "chaining must not change anything");
            // The pre-seam cycle model: the block-cached engine charges
            // exactly the flat per-op costs plus its load-use interlock
            // stalls, and the memory model adds nothing.
            assert_eq!(
                rc.cycles,
                rs.cycles + rc.pipeline.load_use_stalls,
                "{target} frame {i}: Flat must not perturb cycle accounting"
            );
            assert!(rc.pipeline.load_use_stalls > 0, "CNN kernels do stall");
            assert_eq!(rs.mem, Default::default());
            assert_eq!(rc.mem, Default::default());
        }
    }
}

#[test]
fn maupiti_model_keeps_architectural_results_and_adds_engine_independent_stalls() {
    let (model, x) = deployed_model(21);
    let maupiti = MemoryModel::maupiti();
    let flat = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        MemoryModel::Flat,
        true,
    );
    let simple = deployment(&model, Target::Maupiti, ExecMode::Simple, maupiti, true);
    let chained = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        maupiti,
        true,
    );
    let unchained = deployment(
        &model,
        Target::Maupiti,
        ExecMode::BlockCached,
        maupiti,
        false,
    );
    for i in 0..4 {
        let frame = &x.data()[i * 64..(i + 1) * 64];
        let rf = flat.run_frame(frame).expect("flat");
        let rs = simple.run_frame(frame).expect("simple");
        let rc = chained.run_frame(frame).expect("chained");
        let ru = unchained.run_frame(frame).expect("unchained");
        // The hierarchy must not leak into architectural state.
        assert_eq!(rf.logits, rc.logits, "frame {i}");
        assert_eq!(rf.prediction, rc.prediction);
        assert_eq!(rf.instructions, rc.instructions);
        assert_eq!(rf.sdotp, rc.sdotp);
        // Strictly more expensive, by exactly the stall breakdown, with
        // both stall causes live on the CNN workload.
        assert!(rc.mem.fetch_misses > 0, "frame {i}");
        assert!(rc.mem.contended_accesses > 0, "frame {i}");
        assert_eq!(rc.cycles, rf.cycles + rc.mem.stall_cycles());
        assert!(rc.cycles > rf.cycles);
        // The stall breakdown is a property of the retired stream, not of
        // the engine or the chaining mode.
        assert_eq!(rs.mem, rc.mem, "frame {i}: engines diverged");
        assert_eq!(rc, ru, "frame {i}: chaining diverged");
    }
}

#[test]
fn parallel_batches_are_bit_identical_under_the_maupiti_model() {
    let (model, x) = deployed_model(22);
    let n = 8usize;
    let batch = Tensor::from_vec(x.data()[..n * 64].to_vec(), &[n, 1, 8, 8]);
    let mut d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    d.set_memory_model(MemoryModel::maupiti());
    let serial: Vec<_> = (0..n)
        .map(|i| {
            d.run_frame(&batch.data()[i * 64..(i + 1) * 64])
                .expect("serial")
        })
        .collect();
    for threads in [1usize, 3] {
        let pool = d.make_pool(threads).expect("pool");
        let parallel = d.run_batch(&batch, &pool).expect("batch");
        assert_eq!(parallel, serial, "{threads} threads");
    }
    assert!(serial[0].mem.stall_cycles() > 0);
}

#[test]
fn hot_trace_report_explains_stalls_on_the_deployed_cnn() {
    let (model, x) = deployed_model(23);
    let frame = &x.data()[..64];
    let mut d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    d.set_memory_model(MemoryModel::maupiti());
    let run = d.run_frame(frame).expect("run");
    let hot = d.hottest_blocks(frame, 8).expect("profile");
    assert!(!hot.is_empty());
    let attributed: u64 = hot.iter().map(|h| h.mem_stall_cycles).sum();
    assert!(
        attributed > 0,
        "the hot-trace report must carry the memory-stall column"
    );
    assert!(attributed <= run.mem.stall_cycles() * 2);
}
