//! Fault-ordering and pooled-CPU state-hygiene suite for
//! [`Deployment::run_batch`] under the worker pool.
//!
//! `run_batch` promises serial-loop error semantics at any pool width:
//! every frame is evaluated, and the returned error is the fault of the
//! *lowest* faulting frame index. The per-frame budget seam
//! ([`Deployment::run_batch_with_budgets`]) lets these tests make chosen
//! frames time out deterministically — at depth zero (budget exhausted on
//! the first instruction) or mid-inference — and the distinct budget
//! values embedded in [`SimError::Timeout`] identify *which* frame's
//! fault came back.
//!
//! The hygiene half pins down the quarantine contract: a CPU that faulted
//! mid-inference holds a torn memory image and a mid-program PC, and
//! reusing it without a reset perturbs the next frame's results;
//! [`CpuPool::quarantine`] restores the pristine base state and makes the
//! next inference bit-identical to a fresh clone's.

use pcount_kernels::{Deployment, SimError, Target, INSTRUCTION_BUDGET};
use pcount_nn::{CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small trained + quantised CNN and a batch of sample frames.
fn deployed_model(seed: u64, n: usize) -> (QuantizedCnn, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Tensor::zeros(&[n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..4usize);
        x.set(&[i, 0, 2 + class, 3], 3.0);
        for h in 0..8 {
            for w in 0..8 {
                let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                x.set(&[i, 0, h, w], v);
            }
        }
        y.push(class);
    }
    let cfg = CnnConfig::seed().with_channels(6, 6, 12);
    let mut net = cfg.build(&mut rng);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
    let folded = fold_sequential(cfg, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x);
    (QuantizedCnn::from_qat(&qat), x)
}

/// Runs the batch with reduced budgets on the given frames and returns
/// the error, asserting there is one.
fn faulting_batch(
    d: &Deployment,
    x: &Tensor,
    threads: usize,
    budgets: &[(usize, u64)],
) -> SimError {
    let pool = d.make_pool(threads).expect("pool");
    let budget_of = |i: usize| {
        budgets
            .iter()
            .find(|&&(f, _)| f == i)
            .map(|&(_, b)| b)
            .unwrap_or(INSTRUCTION_BUDGET)
    };
    d.run_batch_with_budgets(x, &pool, budget_of)
        .expect_err("chosen frames must fault")
}

#[test]
fn fault_on_frame_zero_is_returned_at_every_pool_width() {
    let (model, x) = deployed_model(40, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(0, 5)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 5
            },
            "{threads} threads"
        );
    }
}

#[test]
fn fault_on_the_last_frame_is_returned_at_every_pool_width() {
    let (model, x) = deployed_model(41, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(7, 9)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 9
            },
            "{threads} threads"
        );
    }
}

#[test]
fn lowest_index_fault_wins_across_worker_ranges() {
    let (model, x) = deployed_model(42, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    // Frames 2 and 5 land in different worker ranges at widths 2 and 4;
    // the distinct budgets identify whose Timeout is returned.
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(2, 7), (5, 13)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 7
            },
            "{threads} threads: a later range's fault shadowed frame 2"
        );
    }
}

#[test]
fn faults_at_different_depths_interleave_deterministically() {
    let (model, x) = deployed_model(43, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    // Frame 1 faults instantly (budget 1), frame 4 deep mid-inference
    // (budget 20k): the lowest index wins even though its fault is the
    // cheapest to hit...
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(1, 1), (4, 20_000)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 1
            },
            "{threads} threads"
        );
    }
    // ...and also when the depths are swapped (the deep fault on the
    // earlier frame finishes long after the instant one).
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(1, 20_000), (4, 1)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 20_000
            },
            "{threads} threads"
        );
    }
}

#[test]
fn every_frame_of_a_faulting_batch_is_still_evaluated() {
    let (model, x) = deployed_model(44, 8);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    // A batch with faults on three frames across all worker ranges still
    // returns the lowest fault, not whichever worker finished first.
    for threads in [1usize, 2, 4] {
        let err = faulting_batch(&d, &x, threads, &[(1, 11), (3, 12), (6, 14)]);
        assert_eq!(
            err,
            SimError::Timeout {
                max_instructions: 11
            },
            "{threads} threads"
        );
    }
    // And with no faults the same batch is bit-identical to serial.
    let pool = d.make_pool(4).expect("pool");
    let runs = d.run_batch(&x, &pool).expect("clean batch");
    for (i, run) in runs.iter().enumerate() {
        let serial = d
            .run_frame(&x.data()[i * 64..(i + 1) * 64])
            .expect("serial");
        assert_eq!(*run, serial, "frame {i}");
    }
}

#[test]
fn faulted_cpu_perturbs_the_next_frame_unless_quarantined() {
    let (model, x) = deployed_model(45, 4);
    let d = Deployment::new(&model, Target::Maupiti).expect("deploy");
    let clean: Vec<_> = (0..2)
        .map(|i| {
            d.run_frame(&x.data()[i * 64..(i + 1) * 64])
                .expect("clean run")
        })
        .collect();
    assert!(
        clean[1].instructions > 2_000,
        "inference too small for a mid-flight timeout"
    );

    // Fault frame 0 mid-inference on pool slot 0, then run frame 1 on the
    // same slot WITHOUT a reset: the torn memory image and mid-program PC
    // must perturb the result (this is the hazard quarantine exists for).
    let mut pool = d.make_pool(2).expect("pool");
    let (_, cpus) = pool.split_mut();
    let err = d
        .run_frame_with_budget(&mut cpus[0], &x.data()[..64], 2_000)
        .expect_err("reduced budget must fault");
    assert!(matches!(err, SimError::Timeout { .. }));
    let dirty = d.run_frame_with_budget(&mut cpus[0], &x.data()[64..128], INSTRUCTION_BUDGET);
    let dirty_matches_clean = match dirty {
        Ok(run) => run == clean[1],
        Err(_) => false,
    };
    assert!(
        !dirty_matches_clean,
        "reusing a faulted CPU without reset silently produced the clean result"
    );

    // Quarantine the slot: the next inference is bit-identical to a
    // fresh clone's.
    pool.quarantine(0);
    let (_, cpus) = pool.split_mut();
    let healed = d
        .run_frame_with_budget(&mut cpus[0], &x.data()[64..128], INSTRUCTION_BUDGET)
        .expect("quarantined CPU runs clean");
    assert_eq!(
        healed, clean[1],
        "quarantine did not restore pristine state"
    );

    // `run_batch` clones each pool slot per frame, so within a batch no
    // frame can leak into the next — but the clones inherit whatever
    // state the slot holds, so a slot used in place must be quarantined
    // before the pool serves batches again.
    pool.quarantine(0);
    let runs = d.run_batch(&x, &pool).expect("batch");
    for (i, run) in runs.iter().enumerate() {
        let serial = d
            .run_frame(&x.data()[i * 64..(i + 1) * 64])
            .expect("serial");
        assert_eq!(*run, serial, "frame {i}");
    }
}
