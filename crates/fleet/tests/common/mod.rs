//! Shared fixtures of the fleet suites: a small trained INT8 deployment
//! and a compact fleet configuration that still exercises every front-end
//! path (admission, backpressure, quarantine) in seconds.

use pcount_dataset::{DatasetConfig, IrDataset};
use pcount_fleet::{CrashConfig, CrashPolicy, FleetConfig};
use pcount_kernels::{Deployment, Target};
use pcount_nn::{CnnConfig, TrainConfig};
use pcount_quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small trained + quantised CNN deployed for the MAUPITI target.
pub fn tiny_deployment(seed: u64) -> Deployment {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 48;
    let mut x = Tensor::zeros(&[n, 1, 8, 8]);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..4usize);
        x.set(&[i, 0, 2 + class, 3], 3.0);
        for h in 0..8 {
            for w in 0..8 {
                let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                x.set(&[i, 0, h, w], v);
            }
        }
        y.push(class);
    }
    let cfg = CnnConfig::seed().with_channels(6, 6, 12);
    let mut net = cfg.build(&mut rng);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    };
    let _ = pcount_nn::train_classifier(&mut net, &x, &y, &tc, &mut rng);
    let folded = fold_sequential(cfg, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x);
    let model = QuantizedCnn::from_qat(&qat);
    Deployment::new(&model, Target::Maupiti).expect("deploy")
}

/// The synthetic LINAIGE-like dataset the nodes replay.
pub fn tiny_dataset() -> IrDataset {
    IrDataset::generate(&DatasetConfig::tiny(), 77)
}

/// `small_cfg` slowed down until queues back up, plus a mid-run crash of
/// shard 0 (shard 1 survives and takes the failover traffic). The slow
/// virtual service clock guarantees a non-empty queue at the crash.
#[allow(dead_code)]
pub fn crashy_cfg(policy: CrashPolicy) -> FleetConfig {
    FleetConfig {
        service_clock_hz: 2_000_000,
        queue_cap: 8,
        batch_max: 2,
        high_watermark: 6,
        low_watermark: 2,
        frames_per_node: 12,
        crash: Some(CrashConfig {
            shard_stride: 2,
            window: (0.35, 0.7),
            jitter: 0.02,
            policy,
        }),
        checkpoint_period_ms: 300,
        ..small_cfg()
    }
}

/// A compact fleet: 24 nodes over 6 rooms on 2 shards, short windows.
pub fn small_cfg() -> FleetConfig {
    FleetConfig {
        nodes: 24,
        rooms: 6,
        shards: 2,
        frames_per_node: 8,
        fault_intensity: 0.15,
        clock_skew_max_ms: 120,
        queue_cap: 16,
        batch_max: 4,
        high_watermark: 10,
        low_watermark: 4,
        health_window: 4,
        quarantine_burn_milli: 5_000,
        readmit_after: 3,
        seed: 11,
        ..FleetConfig::default()
    }
}
