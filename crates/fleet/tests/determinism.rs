//! Determinism suite of the fleet co-simulation: a run is a pure
//! function of `(fleet seed, config, dataset, model)` — never of the
//! pool width or host timing — and no amount of injected chaos aborts
//! the service.

mod common;

use pcount_fleet::{CrashPolicy, FleetConfig, FleetService, StormConfig};

fn service(cfg: FleetConfig) -> FleetService {
    FleetService::new(common::tiny_deployment(30), cfg, &common::tiny_dataset()).expect("fleet")
}

#[test]
fn fleet_run_is_bit_identical_across_pool_widths_1_and_4() {
    let svc = service(common::small_cfg());
    let mut narrow = svc.make_pool(1).expect("pool");
    let mut wide = svc.make_pool(4).expect("pool");
    let a = svc.run(&mut narrow);
    let b = svc.run(&mut wide);
    // The full delivery log — statuses, queue depths, latencies,
    // quarantine flags — compares equal, not just the digest.
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.occupancy, b.occupancy);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn same_seed_reproduces_and_different_seed_diverges() {
    let svc = service(common::small_cfg());
    let mut pool = svc.make_pool(2).expect("pool");
    let a = svc.run(&mut pool);
    let b = svc.run(&mut pool);
    assert_eq!(a.to_json(), b.to_json(), "same fleet: bit-identical reruns");

    let reseeded = service(FleetConfig {
        seed: 12,
        ..common::small_cfg()
    });
    let c = reseeded.run(&mut pool);
    // A different fleet seed redraws every node's chaos, phase and skew;
    // the occupancy trajectory digest cannot survive that.
    assert_ne!(a.occupancy.hash, c.occupancy.hash);
}

#[test]
fn failover_run_is_bit_identical_across_pool_widths_1_and_4() {
    // A mid-run shard crash + restart (queue re-routed, rooms migrated,
    // checkpointed recovery) must not cost one bit of reproducibility.
    let svc = service(common::crashy_cfg(CrashPolicy::Reroute));
    let mut narrow = svc.make_pool(1).expect("pool");
    let mut wide = svc.make_pool(4).expect("pool");
    let a = svc.run(&mut narrow);
    let b = svc.run(&mut wide);
    assert!(a.totals.crashes > 0, "the crash schedule must fire");
    assert!(a.totals.rerouted > 0, "failover traffic must exist");
    // The full delivery log — statuses, re-route flags, latencies — and
    // the failover accounting compare equal, not just the digest.
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.occupancy, b.occupancy);
    assert_eq!(a.crash_reports, b.crash_reports);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn failover_schedule_diverges_with_the_seed() {
    let svc = service(common::crashy_cfg(CrashPolicy::Reroute));
    let reseeded = service(FleetConfig {
        seed: 12,
        ..common::crashy_cfg(CrashPolicy::Reroute)
    });
    let mut pool = svc.make_pool(2).expect("pool");
    let a = svc.run(&mut pool);
    let c = reseeded.run(&mut pool);
    // A different fleet seed redraws the crash jitter along with every
    // node's chaos: the outage instants and the trajectory both move.
    assert_ne!(
        a.crash_reports[0].crash_ns, c.crash_reports[0].crash_ns,
        "crash jitter must follow the seed"
    );
    assert_ne!(a.occupancy.hash, c.occupancy.hash);
}

#[test]
fn fault_storm_never_aborts_the_service() {
    let cfg = FleetConfig {
        storm: Some(StormConfig {
            intensity: 0.9,
            node_stride: 1,
            window: (0.25, 0.75),
        }),
        ..common::small_cfg()
    };
    let svc = service(cfg.clone());
    let mut pool = svc.make_pool(4).expect("pool");
    let report = svc.run(&mut pool);
    // Every node's every delivery slot was disposed of exactly once:
    // nothing was lost, duplicated or aborted mid-stream.
    assert!(report.conservation_holds(), "front-end algebra violated");
    assert_eq!(report.node_reports.len(), cfg.nodes);
    assert!(report
        .node_reports
        .iter()
        .all(|n| n.deliveries >= cfg.frames_per_node as u64 - 2));
    // A storm at intensity 0.9 over the whole fleet must actually bite…
    let storm_faults: u64 = report
        .node_reports
        .iter()
        .map(|n| n.gaps + n.fallback + n.retries)
        .sum();
    assert!(storm_faults > 0, "storm injected no faults at all");
    // …and the per-shard burn must reflect it.
    assert!(report.worst_shard_burn_milli > 0);
}

#[test]
fn shard_slo_is_the_merge_of_its_nodes() {
    let svc = service(common::small_cfg());
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    for shard in &report.shard_reports {
        let members: Vec<_> = report
            .node_reports
            .iter()
            .filter(|n| n.shard == shard.shard)
            .collect();
        assert_eq!(members.len(), shard.nodes);
        for &(name, merged) in &shard.slo.counters {
            let summed: u64 = members
                .iter()
                .map(|n| {
                    n.slo
                        .counters
                        .iter()
                        .find(|(c, _)| *c == name)
                        .map(|&(_, v)| v)
                        .unwrap_or(0)
                })
                .sum();
            assert_eq!(merged, summed, "shard {} counter {name}", shard.shard);
        }
        // Pooled burn weighs frames, not nodes: recompute it directly.
        let bad: u64 = members.iter().map(|n| n.deliveries - n.fused).sum();
        let total: u64 = members.iter().map(|n| n.deliveries).sum();
        let direct = svc.config().resilience.error_budget.burn_milli(bad, total);
        assert_eq!(shard.burn_milli, direct);
    }
}
