//! Backpressure and quarantine invariants of the serving front-end:
//! the bounded queue never exceeds its cap, every offered frame is
//! disposed of exactly once, and a quarantined node's frames never reach
//! fusion until readmission.

mod common;

use pcount_fleet::{CrashPolicy, DeliveryStatus, FleetConfig, FleetService};

fn service(cfg: FleetConfig) -> FleetService {
    FleetService::new(common::tiny_deployment(31), cfg, &common::tiny_dataset()).expect("fleet")
}

/// A config that drives the shards far past saturation: the virtual
/// service clock is so slow that almost every frame of the burst faces a
/// full queue.
fn saturating_cfg() -> FleetConfig {
    FleetConfig {
        service_clock_hz: 2_000_000,
        queue_cap: 6,
        batch_max: 2,
        high_watermark: 4,
        low_watermark: 1,
        ..common::small_cfg()
    }
}

#[test]
fn bounded_queue_never_exceeds_its_cap() {
    let svc = service(saturating_cfg());
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    let cap = svc.config().queue_cap;
    for d in &report.deliveries {
        assert!(
            d.queue_depth_after <= cap,
            "node {} seq {}: depth {} > cap {cap}",
            d.msg.node,
            d.msg.seq,
            d.queue_depth_after
        );
    }
    assert_eq!(
        report.queue_depth_peak as usize, cap,
        "saturation reached the cap"
    );
    assert!(report.totals.shed > 0, "saturated fleet must shed");
    assert!(
        report.totals.downsampled > 0,
        "throttled nodes must downsample under sustained overload"
    );
}

#[test]
fn every_offered_frame_is_counted_exactly_once() {
    let svc = service(saturating_cfg());
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    // Recount the delivery log independently of the fold's accounting.
    let count = |f: &dyn Fn(DeliveryStatus) -> bool| -> u64 {
        report.deliveries.iter().filter(|d| f(d.status)).count() as u64
    };
    let gaps = count(&|s| s == DeliveryStatus::Gap);
    let shed = count(&|s| s == DeliveryStatus::Shed);
    let down = count(&|s| s == DeliveryStatus::Downsampled);
    let executed = count(&|s| s.executed());
    assert_eq!(report.totals.gaps, gaps);
    assert_eq!(report.totals.shed, shed);
    assert_eq!(report.totals.downsampled, down);
    assert_eq!(report.totals.admitted, executed);
    assert_eq!(
        report.totals.requests,
        shed + down + executed,
        "every request is shed, downsampled or executed — exactly once"
    );
    assert_eq!(
        report.deliveries.len() as u64,
        report.totals.requests + gaps
    );
    // The same identities hold per node (no cross-node leakage).
    for n in &report.node_reports {
        assert_eq!(
            n.deliveries,
            n.gaps + n.shed + n.downsampled + n.ok + n.recovered + n.fallback
        );
    }
}

#[test]
fn every_offered_frame_is_counted_exactly_once_under_crashes() {
    // The crash-aware conservation identity, at pool widths 1 and 4 and
    // under every disposal policy: fused/executed + shed + downsampled +
    // lost-in-crash covers every request exactly once.
    for policy in [CrashPolicy::Reroute, CrashPolicy::Shed, CrashPolicy::Hold] {
        let svc = service(common::crashy_cfg(policy));
        for width in [1usize, 4] {
            let mut pool = svc.make_pool(width).expect("pool");
            let report = svc.run(&mut pool);
            assert!(
                report.conservation_holds(),
                "{policy:?} width {width}: conservation violated"
            );
            let count = |f: &dyn Fn(DeliveryStatus) -> bool| -> u64 {
                report.deliveries.iter().filter(|d| f(d.status)).count() as u64
            };
            let gaps = count(&|s| s == DeliveryStatus::Gap);
            let shed = count(&|s| s == DeliveryStatus::Shed);
            let down = count(&|s| s == DeliveryStatus::Downsampled);
            let lost = count(&|s| s == DeliveryStatus::CrashLost);
            let executed = count(&|s| s.executed());
            assert_eq!(report.totals.crash_lost, lost);
            assert_eq!(
                report.totals.requests,
                shed + down + lost + executed,
                "{policy:?} width {width}: a request escaped the algebra"
            );
            assert_eq!(
                report.deliveries.len() as u64,
                report.totals.requests + gaps
            );
            // Per crash event, the queue is disposed of exactly once.
            for c in &report.crash_reports {
                assert_eq!(c.queued_at_crash, c.crash_lost + c.rerouted + c.held);
            }
            // The same identity holds per node (no cross-node leakage).
            for n in &report.node_reports {
                assert_eq!(
                    n.deliveries,
                    n.gaps
                        + n.shed
                        + n.downsampled
                        + n.crash_lost
                        + n.ok
                        + n.recovered
                        + n.fallback
                );
            }
        }
    }
}

/// A config whose chaos reliably trips the sick-node detector: heavy
/// gaps and unrecoverable stalls against a tight window.
fn quarantining_cfg() -> FleetConfig {
    FleetConfig {
        fault_intensity: 0.55,
        health_window: 3,
        quarantine_burn_milli: 4_000,
        readmit_after: 2,
        frames_per_node: 12,
        ..common::small_cfg()
    }
}

#[test]
fn quarantined_frames_never_reach_fusion_until_readmission() {
    let svc = service(quarantining_cfg());
    let mut pool = svc.make_pool(4).expect("pool");
    let report = svc.run(&mut pool);
    assert!(
        report.totals.quarantine_trips > 0,
        "this chaos level must quarantine at least one node"
    );
    // The core invariant, over every delivery of the run.
    for d in &report.deliveries {
        assert!(
            !(d.quarantined && d.fused),
            "node {} seq {} fused while quarantined",
            d.msg.node,
            d.msg.seq
        );
    }
    // Stronger: the room estimates never moved on a quarantined node's
    // delivery — change points only reference un-quarantined deliveries.
    for c in &report.occupancy.changes {
        let d = &report.deliveries[c.seq as usize];
        assert!(
            !d.quarantined,
            "occupancy changed at seq {} during quarantine of node {}",
            c.seq, d.msg.node
        );
    }
    // Readmission really resumes fusion: a readmitted node fuses again
    // after its quarantine window.
    if let Some(n) = report
        .node_reports
        .iter()
        .find(|n| n.readmissions > 0 && n.fused > 0)
    {
        let seqs: Vec<(bool, bool)> = report
            .deliveries
            .iter()
            .filter(|d| d.msg.node == n.node)
            .map(|d| (d.quarantined, d.fused))
            .collect();
        let last_quarantined = seqs.iter().rposition(|&(q, _)| q).expect("was quarantined");
        assert!(
            seqs[last_quarantined..].iter().any(|&(_, fused)| fused),
            "node {} never fused again after readmission",
            n.node
        );
    }
    assert!(report.conservation_holds());
}

#[test]
fn watermark_hysteresis_throttles_and_releases() {
    let svc = service(saturating_cfg());
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    // Downsampling only ever happens at or past the high watermark —
    // sampled depths at downsample decisions stay in the throttled band.
    let low = svc.config().low_watermark;
    for d in report
        .deliveries
        .iter()
        .filter(|d| d.status == DeliveryStatus::Downsampled)
    {
        assert!(
            d.queue_depth_after > low,
            "node {} downsampled below the release watermark (depth {})",
            d.msg.node,
            d.queue_depth_after
        );
    }
}
