//! Typed validation of `FleetConfig`: every inconsistent knob set maps
//! to its own `ConfigError` variant via `validated()`, and the panicking
//! `validate()` path reports the same message.

use pcount_fleet::{AdaptiveConfig, ConfigError, CrashConfig, FleetConfig};

fn base() -> FleetConfig {
    FleetConfig::smoke()
}

#[test]
fn a_consistent_config_validates() {
    assert_eq!(base().validated(), Ok(()));
    assert_eq!(FleetConfig::default().validated(), Ok(()));
    let full = FleetConfig {
        crash: Some(CrashConfig::default()),
        adaptive: Some(AdaptiveConfig::default()),
        ..base()
    };
    assert_eq!(full.validated(), Ok(()));
}

#[test]
fn empty_fleets_are_rejected() {
    let cfg = FleetConfig { nodes: 0, ..base() };
    assert_eq!(cfg.validated(), Err(ConfigError::NoNodes));
    let cfg = FleetConfig {
        frames_per_node: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::NoFrames));
}

#[test]
fn room_and_shard_topology_is_checked() {
    let cfg = FleetConfig { rooms: 0, ..base() };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadRooms {
            rooms: 0,
            nodes: 200
        })
    );
    let cfg = FleetConfig {
        rooms: 300,
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadRooms {
            rooms: 300,
            nodes: 200
        })
    );
    let cfg = FleetConfig {
        shards: 0,
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadShards {
            shards: 0,
            rooms: 20
        })
    );
    let cfg = FleetConfig {
        shards: 21,
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadShards {
            shards: 21,
            rooms: 20
        })
    );
}

#[test]
fn queue_and_watermark_knobs_are_checked() {
    let cfg = FleetConfig {
        queue_cap: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroQueueCap));
    // Inverted watermarks.
    let cfg = FleetConfig {
        low_watermark: 48,
        high_watermark: 48,
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadWatermarks {
            low: 48,
            high: 48,
            cap: 64
        })
    );
    // High watermark past the cap.
    let cfg = FleetConfig {
        high_watermark: 65,
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadWatermarks {
            low: 16,
            high: 65,
            cap: 64
        })
    );
}

#[test]
fn health_and_clock_knobs_are_checked() {
    let cfg = FleetConfig {
        health_window: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroHealthWindow));
    let cfg = FleetConfig {
        readmit_after: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroReadmitStreak));
    let cfg = FleetConfig {
        service_clock_hz: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroServiceClock));
    let cfg = FleetConfig {
        checkpoint_period_ms: 0,
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroCheckpointPeriod));
}

#[test]
fn crash_schedules_are_checked() {
    let cfg = FleetConfig {
        crash: Some(CrashConfig {
            window: (0.6, 0.4),
            ..CrashConfig::default()
        }),
        ..base()
    };
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadCrashWindow {
            start: 0.6,
            end: 0.4
        })
    );
    let cfg = FleetConfig {
        crash: Some(CrashConfig {
            window: (-0.1, 0.4),
            ..CrashConfig::default()
        }),
        ..base()
    };
    assert!(matches!(
        cfg.validated(),
        Err(ConfigError::BadCrashWindow { .. })
    ));
    let cfg = FleetConfig {
        crash: Some(CrashConfig {
            jitter: f64::NAN,
            ..CrashConfig::default()
        }),
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::BadCrashJitter));
    let cfg = FleetConfig {
        crash: Some(CrashConfig {
            jitter: -0.5,
            ..CrashConfig::default()
        }),
        ..base()
    };
    assert_eq!(cfg.validated(), Err(ConfigError::BadCrashJitter));
}

#[test]
fn adaptive_admission_knobs_are_checked() {
    let with = |adaptive: AdaptiveConfig| FleetConfig {
        adaptive: Some(adaptive),
        ..base()
    };
    let cfg = with(AdaptiveConfig {
        window: 0,
        ..AdaptiveConfig::default()
    });
    assert_eq!(cfg.validated(), Err(ConfigError::BadAdaptiveWindow));
    let cfg = with(AdaptiveConfig {
        watermark_step: 0,
        ..AdaptiveConfig::default()
    });
    assert_eq!(cfg.validated(), Err(ConfigError::ZeroAdaptiveStep));
    // No hysteresis gap.
    let cfg = with(AdaptiveConfig {
        tighten_burn_milli: 500,
        relax_burn_milli: 500,
        ..AdaptiveConfig::default()
    });
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadAdaptiveThresholds {
            relax: 500,
            tighten: 500
        })
    );
    let cfg = with(AdaptiveConfig {
        min_high_watermark: 0,
        ..AdaptiveConfig::default()
    });
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadAdaptiveWatermarkFloor { floor: 0, high: 48 })
    );
    // Floor above the configured watermark can never be reached.
    let cfg = with(AdaptiveConfig {
        min_high_watermark: 64,
        ..AdaptiveConfig::default()
    });
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadAdaptiveWatermarkFloor {
            floor: 64,
            high: 48
        })
    );
    let cfg = with(AdaptiveConfig {
        max_downsample_stride: 1,
        ..AdaptiveConfig::default()
    });
    assert_eq!(
        cfg.validated(),
        Err(ConfigError::BadAdaptiveStride { max: 1 })
    );
}

#[test]
fn errors_render_the_offending_knobs() {
    let msg = ConfigError::BadWatermarks {
        low: 9,
        high: 3,
        cap: 4,
    }
    .to_string();
    assert!(msg.contains("low 9") && msg.contains("high 3") && msg.contains("cap 4"));
    let msg = ConfigError::BadAdaptiveThresholds {
        relax: 800,
        tighten: 400,
    }
    .to_string();
    assert!(msg.contains("800") && msg.contains("400"));
}

#[test]
#[should_panic(expected = "invalid fleet config")]
fn the_panicking_path_reports_the_typed_error() {
    FleetConfig { nodes: 0, ..base() }.validate();
}
