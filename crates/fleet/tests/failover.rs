//! Failover invariants of the serving layer: a crashed shard's queue is
//! disposed of exactly per policy, rooms migrate to survivors and return
//! home, recovery is measured from the checkpointed restart, and the
//! adaptive admission controller actually moves the knobs.

mod common;

use pcount_fleet::{
    AdaptiveConfig, CrashConfig, CrashPolicy, DeliveryStatus, FleetConfig, FleetService,
};

fn service(cfg: FleetConfig) -> FleetService {
    FleetService::new(common::tiny_deployment(33), cfg, &common::tiny_dataset()).expect("fleet")
}

#[test]
fn crash_events_conserve_the_queue_and_report_recovery() {
    let svc = service(common::crashy_cfg(CrashPolicy::Reroute));
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    assert_eq!(report.totals.crashes, 1, "stride 2 of 2 shards = 1 crash");
    assert_eq!(report.crash_reports.len(), 1);
    let c = &report.crash_reports[0];
    assert_eq!(c.shard, 0);
    assert!(c.crash_ns < c.restart_ns);
    // Every frame queued at the crash is accounted exactly once.
    assert_eq!(
        c.queued_at_crash,
        c.crash_lost + c.rerouted + c.held,
        "crash disposal must conserve the queue"
    );
    assert!(
        c.queued_at_crash > 0,
        "the slowed clock must leave a backlog at the crash"
    );
    assert!(c.held == 0, "reroute policy holds nothing");
    assert!(c.migrations_out > 0, "shard 0's rooms must migrate");
    assert!(c.recovery_ns > 0, "recovery time is measured");
    assert_eq!(
        report.recovery_counts.summarize().count,
        1,
        "one recovery sample per crash"
    );
    // The shard report agrees.
    assert_eq!(report.shard_reports[0].crashes, 1);
    assert_eq!(report.shard_reports[1].crashes, 0);
    // Rerouted frames carry the flag, and totals see them.
    let rerouted_logged = report.deliveries.iter().filter(|d| d.rerouted).count() as u64;
    assert_eq!(report.totals.rerouted, rerouted_logged);
    assert!(
        rerouted_logged >= c.rerouted,
        "queue re-routes are part of the rerouted traffic"
    );
    // While shard 0 was down its rooms were served by shard 1.
    assert!(
        report
            .deliveries
            .iter()
            .any(|d| d.rerouted && d.shard == 1 && d.status.executed()),
        "failover traffic must actually execute on the survivor"
    );
    assert!(report.totals.checkpoints > 0, "checkpoints were taken");
    assert!(report.totals.migrations >= 2, "out and back home");
}

#[test]
fn shed_policy_loses_the_queue_and_nothing_else() {
    let svc = service(common::crashy_cfg(CrashPolicy::Shed));
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    let c = &report.crash_reports[0];
    assert!(c.queued_at_crash > 0);
    assert_eq!(
        c.crash_lost, c.queued_at_crash,
        "shed policy loses the queue"
    );
    assert_eq!(c.rerouted + c.held, 0);
    assert!(report.totals.crash_lost >= c.crash_lost);
    // Lost frames appear in the delivery log exactly as CrashLost.
    let lost_logged = report
        .deliveries
        .iter()
        .filter(|d| d.status == DeliveryStatus::CrashLost)
        .count() as u64;
    assert_eq!(report.totals.crash_lost, lost_logged);
    // CrashLost frames never execute and never fuse.
    for d in &report.deliveries {
        if d.status == DeliveryStatus::CrashLost {
            assert!(!d.fused && d.latency_ns.is_none());
        }
    }
}

#[test]
fn hold_policy_serves_the_queue_after_the_restart() {
    let svc = service(common::crashy_cfg(CrashPolicy::Hold));
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    let c = &report.crash_reports[0];
    assert!(c.queued_at_crash > 0);
    assert_eq!(c.held, c.queued_at_crash, "hold policy keeps the queue");
    assert_eq!(c.crash_lost + c.rerouted, 0);
    // Held frames absorb the outage as latency: something that arrived
    // before the crash completed at or after the restart.
    let outage_spanned = report.deliveries.iter().any(|d| {
        d.shard == c.shard
            && d.msg.arrival_ns < c.crash_ns
            && d.latency_ns
                .is_some_and(|lat| d.msg.arrival_ns + lat as i64 >= c.restart_ns)
    });
    assert!(outage_spanned, "held frames must wait out the downtime");
}

#[test]
fn the_crash_schedule_is_a_pure_function_of_the_config() {
    let svc = service(common::crashy_cfg(CrashPolicy::Reroute));
    let schedule = svc.crash_schedule();
    assert_eq!(schedule.len(), 1);
    let mut pool = svc.make_pool(1).expect("pool");
    let report = svc.run(&mut pool);
    assert_eq!(report.crash_reports[0].crash_ns, schedule[0].crash_ns);
    assert_eq!(report.crash_reports[0].restart_ns, schedule[0].restart_ns);
    assert_eq!(svc.crash_schedule(), schedule, "schedule is stable");
}

#[test]
fn a_crash_before_any_checkpoint_recovers_from_boot_state() {
    // A checkpoint period longer than the run: the crash finds no
    // checkpoint and the shard recovers with reset estimators.
    let cfg = FleetConfig {
        checkpoint_period_ms: 600_000,
        ..common::crashy_cfg(CrashPolicy::Reroute)
    };
    let svc = service(cfg);
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    assert_eq!(report.totals.crashes, 1);
    assert_eq!(report.totals.checkpoints, 0, "no checkpoint fits the run");
}

#[test]
fn every_shard_down_sheds_instead_of_aborting() {
    // Stride 1 with overlapping outages: both shards are down for a
    // stretch, so arrivals in that window cannot be admitted anywhere.
    let cfg = FleetConfig {
        crash: Some(CrashConfig {
            shard_stride: 1,
            window: (0.3, 0.75),
            jitter: 0.0,
            policy: CrashPolicy::Reroute,
        }),
        ..common::crashy_cfg(CrashPolicy::Reroute)
    };
    let svc = service(cfg);
    let mut pool = svc.make_pool(2).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds());
    assert_eq!(report.totals.crashes, 2);
    for c in &report.crash_reports {
        assert_eq!(c.queued_at_crash, c.crash_lost + c.rerouted + c.held);
    }
    assert!(
        report.totals.shed + report.totals.crash_lost > 0,
        "a fleet-wide outage must lose or shed something"
    );
}

#[test]
fn adaptive_admission_tightens_under_overload_and_sheds_less() {
    // The same saturating fleet, static vs burn-driven admission.
    let static_cfg = FleetConfig {
        service_clock_hz: 2_000_000,
        queue_cap: 8,
        batch_max: 2,
        high_watermark: 6,
        low_watermark: 2,
        frames_per_node: 12,
        ..common::small_cfg()
    };
    let adaptive_cfg = FleetConfig {
        adaptive: Some(AdaptiveConfig {
            window: 16,
            tighten_burn_milli: 1_000,
            relax_burn_milli: 250,
            min_high_watermark: 2,
            watermark_step: 2,
            max_downsample_stride: 4,
        }),
        ..static_cfg.clone()
    };
    let svc_static = service(static_cfg);
    let svc_adaptive = service(adaptive_cfg);
    let mut pool = svc_static.make_pool(2).expect("pool");
    let a = svc_static.run(&mut pool);
    let b = svc_adaptive.run(&mut pool);
    assert!(a.conservation_holds() && b.conservation_holds());
    // Static shards never move their knobs…
    for s in &a.shard_reports {
        assert_eq!(s.adaptive_tightens + s.adaptive_relaxes, 0);
        assert_eq!(s.downsample_stride, 2);
        assert_eq!(s.high_watermark, 6);
    }
    // …while overloaded adaptive shards tighten.
    let tightens: u64 = b.shard_reports.iter().map(|s| s.adaptive_tightens).sum();
    assert!(tightens > 0, "sustained overload must tighten");
    // Tightening converts hard sheds into source downsampling: the
    // adaptive fleet sheds fewer frames at the queue.
    assert!(
        b.totals.shed < a.totals.shed,
        "adaptive shed {} >= static shed {}",
        b.totals.shed,
        a.totals.shed
    );
}
