//! Folded results of a fleet run: per-node and per-shard accounting, the
//! building-wide occupancy trajectory and the hand-rolled JSON the serve
//! bench emits into `BENCH_serve.json`.

use crate::msg::Delivery;
use pcount_telemetry::slo;
use pcount_telemetry::{HistogramCounts, HistogramSummary, SloSnapshot};

/// Fleet-wide front-end totals, one value per `fleet/*` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeTotals {
    /// Frames offered to the front-end (gaps never arrive, so they are
    /// not requests).
    pub requests: u64,
    /// Requests admitted into a shard queue and executed.
    pub admitted: u64,
    /// Requests shed by admission control (queue at capacity).
    pub shed: u64,
    /// Requests downsampled at the source under backpressure.
    pub downsampled: u64,
    /// Sensor gaps (delivery slots whose frame never arrived).
    pub gaps: u64,
    /// Executed frames whose fresh prediction reached room fusion.
    pub fused: u64,
    /// Executed frames withheld from fusion (node quarantined).
    pub quarantined_frames: u64,
    /// Sick-node quarantine trips.
    pub quarantine_trips: u64,
    /// Quarantined nodes readmitted after a clean streak.
    pub readmissions: u64,
    /// Frames lost in shard crashes (queued at the crash instant and
    /// never executed).
    pub crash_lost: u64,
    /// Frames served away from their room's home shard (failover
    /// admissions plus live queue re-routes).
    pub rerouted: u64,
    /// Planned shard crashes executed during the run.
    pub crashes: u64,
    /// Room migrations performed by crash/restart rebalancing.
    pub migrations: u64,
    /// Periodic shard checkpoints taken.
    pub checkpoints: u64,
}

impl ServeTotals {
    /// The totals as `(canonical fleet counter name, value)` pairs, in
    /// [`slo::fleet_counter_names`] order.
    pub fn as_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            (slo::FLEET_REQUESTS, self.requests),
            (slo::FLEET_ADMITTED, self.admitted),
            (slo::FLEET_SHED, self.shed),
            (slo::FLEET_DOWNSAMPLED, self.downsampled),
            (slo::FLEET_GAPS, self.gaps),
            (slo::FLEET_FUSED, self.fused),
            (slo::FLEET_QUARANTINED_FRAMES, self.quarantined_frames),
            (slo::FLEET_QUARANTINE_TRIPS, self.quarantine_trips),
            (slo::FLEET_READMISSIONS, self.readmissions),
            (slo::FLEET_CRASHES, self.crashes),
            (slo::FLEET_CRASH_LOST, self.crash_lost),
            (slo::FLEET_REROUTED, self.rerouted),
            (slo::FLEET_MIGRATIONS, self.migrations),
            (slo::FLEET_CHECKPOINTS, self.checkpoints),
        ]
    }

    /// The totals as a JSON object keyed by counter name.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .as_counters()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// One node's folded accounting.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Fleet-wide node id.
    pub node: usize,
    /// Room the node reports into.
    pub room: usize,
    /// Shard serving that room.
    pub shard: usize,
    /// Delivery slots replayed (arrivals plus gaps).
    pub deliveries: u64,
    /// Sensor gaps.
    pub gaps: u64,
    /// Frames shed by admission control.
    pub shed: u64,
    /// Frames downsampled under backpressure.
    pub downsampled: u64,
    /// Frames lost in a shard crash.
    pub crash_lost: u64,
    /// Frames served away from the room's home shard.
    pub rerouted: u64,
    /// Frames inferred on the first attempt.
    pub ok: u64,
    /// Frames recovered by a retry.
    pub recovered: u64,
    /// Frames that exhausted retries (hold-last-good emitted).
    pub fallback: u64,
    /// Fresh predictions that reached room fusion.
    pub fused: u64,
    /// Executed frames withheld from fusion while quarantined.
    pub quarantined_frames: u64,
    /// Times the sick-node detector quarantined this node.
    pub quarantine_trips: u64,
    /// Times this node was readmitted after a clean streak.
    pub readmissions: u64,
    /// Retry attempts beyond first tries.
    pub retries: u64,
    /// Pooled-CPU restores forced by faulted attempts.
    pub cpu_resets: u64,
    /// Whole-run error-budget burn (milli-units).
    pub burn_milli: i64,
    /// The node's SLO snapshot (canonical counter order, mergeable).
    pub slo: SloSnapshot,
}

/// One shard outage's folded accounting: what happened to the queue at
/// the crash instant and how fast the shard recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// The crashed shard.
    pub shard: usize,
    /// Virtual instant of the crash.
    pub crash_ns: i64,
    /// Virtual instant of the restart.
    pub restart_ns: i64,
    /// Frames sitting in the shard's queue at the crash instant.
    pub queued_at_crash: u64,
    /// Queued frames lost in the crash (never executed).
    pub crash_lost: u64,
    /// Queued frames re-routed live onto surviving shards.
    pub rerouted: u64,
    /// Queued frames held across the downtime (served after restart).
    pub held: u64,
    /// Rooms migrated off the shard at the crash.
    pub migrations_out: u64,
    /// Recovery time: crash to the first fused delivery the shard
    /// completed after its restart (falls back to the bare downtime when
    /// nothing arrived to prove recovery).
    pub recovery_ns: u64,
}

impl CrashReport {
    /// The outage as a JSON object (the `failover.events` array of the
    /// bench).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\":{},\"crash_ns\":{},\"restart_ns\":{},\"queued_at_crash\":{},\
             \"crash_lost\":{},\"rerouted\":{},\"held\":{},\"migrations_out\":{},\
             \"recovery_ns\":{}}}",
            self.shard,
            self.crash_ns,
            self.restart_ns,
            self.queued_at_crash,
            self.crash_lost,
            self.rerouted,
            self.held,
            self.migrations_out,
            self.recovery_ns,
        )
    }
}

/// One shard's folded accounting: the associative merge of its nodes'
/// SLO snapshots plus the queue/latency instruments of its front-end.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Nodes served by this shard.
    pub nodes: usize,
    /// Highest queue depth the shard reached.
    pub queue_depth_peak: u64,
    /// Queue depth distribution (sampled at every arrival).
    pub queue_depth: HistogramSummary,
    /// Request latency distribution of the shard's executed frames.
    pub latency: HistogramSummary,
    /// Raw buckets behind [`ShardReport::latency`] (mergeable).
    pub latency_counts: HistogramCounts,
    /// Pooled error-budget burn of the shard's nodes (milli-units):
    /// bads and totals are summed *before* the burn is computed, so every
    /// frame weighs the same regardless of node sizes.
    pub burn_milli: i64,
    /// Merged SLO snapshot of the shard's nodes.
    pub slo: SloSnapshot,
    /// Times this shard crashed during the run.
    pub crashes: u64,
    /// Adaptive-admission tighten steps this shard took.
    pub adaptive_tightens: u64,
    /// Adaptive-admission relax steps this shard took.
    pub adaptive_relaxes: u64,
    /// Effective high watermark the shard ended the run with.
    pub high_watermark: usize,
    /// Downsample stride the shard ended the run with (2 = static).
    pub downsample_stride: u32,
}

impl ShardReport {
    /// The shard as a JSON object (the `shards` array of the bench).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shard\":{},\"nodes\":{},\"queue_depth_peak\":{},\"queue_depth\":{},\
             \"latency_ns\":{},\"burn_milli\":{},\"crashes\":{},\
             \"adaptive\":{{\"tightens\":{},\"relaxes\":{},\"high_watermark\":{},\
             \"downsample_stride\":{}}},\"slo\":{}}}",
            self.shard,
            self.nodes,
            self.queue_depth_peak,
            self.queue_depth.to_json(),
            self.latency.to_json(),
            self.burn_milli,
            self.crashes,
            self.adaptive_tightens,
            self.adaptive_relaxes,
            self.high_watermark,
            self.downsample_stride,
            self.slo.to_json(),
        )
    }
}

/// One change point of the building-wide occupancy trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyChange {
    /// Global delivery sequence number at which the estimate changed.
    pub seq: u64,
    /// Room whose estimate changed.
    pub room: u32,
    /// The room's new occupancy estimate.
    pub room_count: u32,
    /// The building-wide total after the change.
    pub building: u32,
}

/// The building's occupancy estimate over virtual time, stored as change
/// points plus a collision-resistant digest — the digest is the
/// bit-reproducibility tripwire the determinism suite and the serve
/// bench compare across pool widths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancyTrajectory {
    /// Every change of any room estimate, in delivery order.
    pub changes: Vec<OccupancyChange>,
    /// Final per-room estimates.
    pub final_rooms: Vec<u32>,
    /// FNV-1a digest of the full change sequence and final state.
    pub hash: u64,
}

impl OccupancyTrajectory {
    /// Folds `changes` and the final room estimates into a trajectory
    /// with its digest.
    pub fn new(changes: Vec<OccupancyChange>, final_rooms: Vec<u32>) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for c in &changes {
            mix(c.seq);
            mix(c.room as u64);
            mix(c.room_count as u64);
            mix(c.building as u64);
        }
        for &r in &final_rooms {
            mix(r as u64);
        }
        Self {
            changes,
            final_rooms,
            hash,
        }
    }

    /// Final building-wide occupancy estimate.
    pub fn final_total(&self) -> u32 {
        self.final_rooms.iter().sum()
    }

    /// The digest as a fixed-width hex string (JSON-friendly).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// The trajectory as a JSON object (change points elided, digest and
    /// final state kept).
    pub fn to_json(&self) -> String {
        let rooms: Vec<String> = self.final_rooms.iter().map(|r| r.to_string()).collect();
        format!(
            "{{\"hash\":\"{}\",\"changes\":{},\"final_total\":{},\"final_rooms\":[{}]}}",
            self.hash_hex(),
            self.changes.len(),
            self.final_total(),
            rooms.join(","),
        )
    }
}

/// The full folded result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Nodes simulated.
    pub nodes: usize,
    /// Rooms fused.
    pub rooms: usize,
    /// Service shards.
    pub shards: usize,
    /// Nominal per-frame service cost the plan scheduled with (ns).
    pub per_frame_ns: u64,
    /// Fleet-wide front-end totals.
    pub totals: ServeTotals,
    /// End-to-end request latency over all shards.
    pub latency: HistogramSummary,
    /// Raw buckets behind [`FleetReport::latency`].
    pub latency_counts: HistogramCounts,
    /// Queue depth distribution over all shards.
    pub queue_depth: HistogramSummary,
    /// Highest queue depth any shard reached.
    pub queue_depth_peak: u64,
    /// Worst per-shard pooled error-budget burn (milli-units).
    pub worst_shard_burn_milli: i64,
    /// One record per executed shard outage, in crash order.
    pub crash_reports: Vec<CrashReport>,
    /// Recovery-time distribution over the run's outages.
    pub recovery: HistogramSummary,
    /// Raw buckets behind [`FleetReport::recovery`] (mergeable).
    pub recovery_counts: HistogramCounts,
    /// Per-shard reports.
    pub shard_reports: Vec<ShardReport>,
    /// Per-node reports.
    pub node_reports: Vec<NodeReport>,
    /// Every delivery's folded record, in arrival order (the invariant
    /// tests assert over these).
    pub deliveries: Vec<Delivery>,
    /// The building's occupancy trajectory and determinism digest.
    pub occupancy: OccupancyTrajectory,
}

impl FleetReport {
    /// Sanity identity of the front-end algebra: every delivery slot is
    /// disposed of exactly once.
    pub fn conservation_holds(&self) -> bool {
        let t = &self.totals;
        t.requests == t.admitted + t.shed + t.downsampled + t.crash_lost
            && self.deliveries.len() as u64 == t.requests + t.gaps
            && t.admitted == t.fused + t.quarantined_frames + self.fallbacks_outside_quarantine()
    }

    /// Executed fallback frames of non-quarantined nodes (they neither
    /// fuse nor count as quarantined).
    fn fallbacks_outside_quarantine(&self) -> u64 {
        self.deliveries
            .iter()
            .filter(|d| d.status == crate::msg::DeliveryStatus::Fallback && !d.quarantined)
            .count() as u64
    }

    /// The report as a JSON object (the per-run payload of
    /// `BENCH_serve.json`).
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shard_reports.iter().map(|s| s.to_json()).collect();
        let crashes: Vec<String> = self.crash_reports.iter().map(|c| c.to_json()).collect();
        format!(
            "{{\"nodes\":{},\"rooms\":{},\"shards\":{},\"deliveries\":{},\"per_frame_ns\":{},\
             \"counters\":{},\"latency_ns\":{},\"queue_depth\":{},\"queue_depth_peak\":{},\
             \"worst_shard_burn_milli\":{},\
             \"failover\":{{\"crashes\":{},\"recovery_ns\":{},\"events\":[{}]}},\
             \"shards_detail\":[{}],\"occupancy\":{}}}",
            self.nodes,
            self.rooms,
            self.shards,
            self.deliveries.len(),
            self.per_frame_ns,
            self.totals.to_json(),
            self.latency.to_json(),
            self.queue_depth.to_json(),
            self.queue_depth_peak,
            self.worst_shard_burn_milli,
            self.crash_reports.len(),
            self.recovery.to_json(),
            crashes.join(","),
            shards.join(","),
            self.occupancy.to_json(),
        )
    }
}
