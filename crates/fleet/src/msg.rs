//! Messages exchanged between node actors and the fusion service.
//!
//! The co-simulation is actor-shaped: every sensor node is an actor that
//! emits [`FrameMsg`]s into its shard's mailbox, and the shard front-end
//! turns each message into a [`DeliveryStatus`]. Delivery is
//! *virtual-time* message passing — the scheduler sorts all messages by
//! `(arrival_ns, node, seq)` and replays them serially, so the mailbox
//! order is a pure function of the fleet seed and never of host timing.
//! The frame payload stays in the owning node's
//! [`FaultyStream`](pcount_resilience::FaultyStream) and is referenced by
//! `(node, seq)` instead of being cloned into every message.

/// One frame delivery announced by a node actor to its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMsg {
    /// The emitting node's fleet-wide id.
    pub node: usize,
    /// Index of the tick in the node's faulty stream.
    pub seq: usize,
    /// Virtual arrival time at the service, in nanoseconds: the tick's
    /// (possibly jittered) timestamp plus the node's clock skew, clamped
    /// to the start of the run.
    pub arrival_ns: i64,
}

/// How the service disposed of one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// The frame never arrived (injected sensor drop): the room holds its
    /// last good estimate.
    Gap,
    /// Admission control shed the frame — the shard's bounded queue was
    /// at capacity. The room holds its last good estimate.
    Shed,
    /// The node was under backpressure and downsampled this frame at the
    /// source (every other frame while its shard is throttled).
    Downsampled,
    /// Admitted and inferred on the first attempt.
    Ok,
    /// Admitted and recovered by a retry after `failed_attempts` faulted
    /// attempts.
    Recovered {
        /// Attempts that faulted before the success.
        failed_attempts: u32,
    },
    /// Admitted, but every attempt faulted; the node's hold-last-good
    /// estimate was used instead.
    Fallback,
    /// Lost in a shard crash: the frame was queued on a shard that went
    /// down and the crash policy disposed of it (shed outright, or no
    /// surviving shard could absorb a re-route). The room holds its last
    /// good estimate.
    CrashLost,
}

impl DeliveryStatus {
    /// `true` when the frame was admitted past the front-end and actually
    /// ran on a pooled CPU ([`Ok`](Self::Ok), [`Recovered`](Self::Recovered)
    /// or [`Fallback`](Self::Fallback)).
    pub fn executed(self) -> bool {
        matches!(
            self,
            DeliveryStatus::Ok | DeliveryStatus::Recovered { .. } | DeliveryStatus::Fallback
        )
    }

    /// `true` when the *node* (not the service) is responsible for the
    /// missing fresh prediction: sensor gaps and unrecoverable faults.
    /// Shed and downsampled frames are service-caused and never count
    /// against a node's health.
    pub fn node_caused_degradation(self) -> bool {
        matches!(self, DeliveryStatus::Gap | DeliveryStatus::Fallback)
    }

    /// Stable lowercase name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            DeliveryStatus::Gap => "gap",
            DeliveryStatus::Shed => "shed",
            DeliveryStatus::Downsampled => "downsampled",
            DeliveryStatus::Ok => "ok",
            DeliveryStatus::Recovered { .. } => "recovered",
            DeliveryStatus::Fallback => "fallback",
            DeliveryStatus::CrashLost => "crash_lost",
        }
    }
}

/// The folded record of one message's journey through the service — the
/// unit the backpressure/quarantine invariant tests assert over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivered message.
    pub msg: FrameMsg,
    /// Room the node reports into.
    pub room: usize,
    /// Shard that served the message.
    pub shard: usize,
    /// How the service disposed of it.
    pub status: DeliveryStatus,
    /// Shard queue depth right after this message's admission decision.
    pub queue_depth_after: usize,
    /// End-to-end request latency (arrival to completion) in simulated
    /// nanoseconds, for executed frames.
    pub latency_ns: Option<u64>,
    /// `true` when the node was quarantined while this message was
    /// disposed of (its prediction, if any, was withheld from fusion).
    pub quarantined: bool,
    /// `true` when this message's fresh prediction reached room fusion.
    pub fused: bool,
    /// `true` when the message was served away from its room's home
    /// shard (admitted to a failover shard while the home was down, or
    /// re-routed out of a crashing shard's queue).
    pub rerouted: bool,
}
