//! Sensor-node actors: per-node dataset slice, seeded chaos and clock
//! skew, all derived deterministically from one fleet seed.

use crate::msg::FrameMsg;
use crate::service::FleetConfig;
use pcount_dataset::IrDataset;
use pcount_resilience::{FaultConfig, FaultPlan, FaultyStream};
use pcount_tensor::{SplitMix64, Tensor};

/// The multiplier of per-node stream derivation (the same golden-ratio
/// constant the flow's `derive_seed` and the fault injector use).
const STREAM_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Salt of the per-node fault-plan seed (distinct from the skew stream).
const FAULT_SALT: u64 = 0xBF58_476D_1CE4_E5B9;

/// Salt of a storm segment's fault-plan seed.
const STORM_SALT: u64 = 0x94D0_49BB_1331_11EB;

/// One simulated MAUPITI node: an actor owning its slice of a recorded
/// session, its own reproducible chaos and its own (skewed) clock.
///
/// Provisioning is a pure function of `(fleet seed, node id, dataset,
/// config)`: node `i` replays session `i % sessions` starting at a
/// seed-derived phase, corrupts it through a [`FaultPlan`] seeded from
/// the fleet seed and its id, and timestamps deliveries on a clock with
/// a seed-derived constant skew. Two fleets with the same seed are
/// therefore bit-identical node for node.
#[derive(Debug, Clone)]
pub struct SensorNode {
    /// Fleet-wide node id.
    pub id: usize,
    /// Room this node reports into (`id % rooms`).
    pub room: usize,
    /// Shard serving that room (`room % shards` — rooms never split
    /// across shards).
    pub shard: usize,
    /// The node's corrupted delivery stream (gaps keep their slot,
    /// duplicates add one).
    pub stream: FaultyStream,
    /// Ground-truth people counts of the node's clean window frames
    /// (indexed by a tick's `source_index`).
    pub labels: Vec<usize>,
    /// The node's constant clock skew relative to service time (ms).
    pub skew_ms: i64,
}

impl SensorNode {
    /// Provisions node `id` of a fleet described by `cfg` from `data`.
    pub fn provision(id: usize, data: &IrDataset, cfg: &FleetConfig) -> Self {
        let session = id % data.num_sessions().max(1);
        let node_stream = SplitMix64::new(cfg.seed ^ (id as u64 + 1).wrapping_mul(STREAM_MUL));
        let mut rng = node_stream;
        let start = rng.next_u64() as usize;
        let span = 2 * cfg.clock_skew_max_ms as u64 + 1;
        let skew_ms = (rng.next_u64() % span) as i64 - cfg.clock_skew_max_ms as i64;
        let (frames, labels) = data.session_stream_window(session, start, cfg.frames_per_node);
        let fault_seed = cfg.seed ^ (id as u64 + 1).wrapping_mul(FAULT_SALT);
        let stream = match cfg.storm.as_ref().filter(|s| s.affects(id)) {
            Some(storm) => storm_stream(&frames, fault_seed, cfg, storm.intensity, storm.window),
            None => FaultPlan::new(fault_seed, FaultConfig::uniform(cfg.fault_intensity))
                .inject_with_period(&frames, cfg.frame_period_ms),
        };
        Self {
            id,
            room: id % cfg.rooms.max(1),
            shard: (id % cfg.rooms.max(1)) % cfg.shards.max(1),
            stream,
            labels,
            skew_ms,
        }
    }

    /// The node's outgoing messages, one per delivery slot of its stream,
    /// timestamped on its skewed clock. Arrival times are clamped to the
    /// start of the run (a skewed-early first frame still arrives after
    /// the service is up).
    pub fn messages(&self) -> Vec<FrameMsg> {
        self.stream
            .ticks
            .iter()
            .enumerate()
            .map(|(seq, tick)| FrameMsg {
                node: self.id,
                seq,
                arrival_ns: (tick.timestamp_ms + self.skew_ms).max(0) * 1_000_000,
            })
            .collect()
    }
}

/// Builds a storm-affected node's stream: the middle `window` fraction of
/// its frames is injected at the storm intensity, the rest at the fleet's
/// baseline intensity. Each segment draws from its own derived seed, and
/// tick indices/timestamps are shifted back onto the node's global
/// timeline, so a storm changes *when* chaos spikes without perturbing
/// the other segments' random decisions.
fn storm_stream(
    frames: &Tensor,
    fault_seed: u64,
    cfg: &FleetConfig,
    storm_intensity: f64,
    window: (f64, f64),
) -> FaultyStream {
    let n = frames.shape()[0];
    let pixels: usize = frames.shape()[1..].iter().product();
    let a = ((n as f64) * window.0).floor() as usize;
    let b = (((n as f64) * window.1).floor() as usize).clamp(a, n);
    let mut ticks = Vec::with_capacity(n);
    for (seg, (lo, hi, intensity)) in [
        (0usize, a, cfg.fault_intensity),
        (a, b, storm_intensity),
        (b, n, cfg.fault_intensity),
    ]
    .into_iter()
    .enumerate()
    {
        if lo >= hi {
            continue;
        }
        let seg_frames = Tensor::from_vec(
            frames.data()[lo * pixels..hi * pixels].to_vec(),
            &[hi - lo, 1, 8, 8],
        );
        let seed = fault_seed ^ (seg as u64 + 1).wrapping_mul(STORM_SALT);
        let seg_stream = FaultPlan::new(seed, FaultConfig::uniform(intensity))
            .inject_with_period(&seg_frames, cfg.frame_period_ms);
        for mut tick in seg_stream.ticks {
            tick.source_index += lo;
            tick.timestamp_ms += lo as i64 * cfg.frame_period_ms as i64;
            ticks.push(tick);
        }
    }
    FaultyStream {
        ticks,
        frame_period_ms: cfg.frame_period_ms,
    }
}
