//! The sharded fusion service: virtual-time message scheduling, admission
//! control, bounded queues with backpressure, SLO-driven node quarantine
//! and per-room occupancy fusion.
//!
//! # Determinism
//!
//! The whole fleet run follows the serial-plan → parallel-execute →
//! serial-fold pattern of `pcount-resilience`:
//!
//! 1. **Plan (serial).** Every node's messages are merged into one global
//!    virtual-time order `(arrival_ns, node, seq)`, and each shard's
//!    bounded queue, batch server, admission control and backpressure
//!    hysteresis are simulated against a *nominal* per-frame service cost
//!    — so which frames are shed, downsampled or batched is a pure
//!    function of the fleet seed and the config, never of execution.
//! 2. **Execute (parallel).** Admitted frames' retry loops
//!    ([`ResilientDeployment::attempt_frame`]) run across the
//!    [`CpuPool`], each on a CPU restored from the pristine base, so
//!    every result is a pure per-frame function.
//! 3. **Fold (serial).** Outcomes are replayed in arrival order through
//!    per-node health windows (quarantine/readmission with hysteresis)
//!    and per-room hold-last-good fusion, producing the occupancy
//!    trajectory, latency distributions and SLO accounting.
//!
//! Consequently a [`FleetReport`] is bit-identical for every pool width
//! (asserted by the crate's determinism suite and the serve bench
//! tripwire).

use std::collections::VecDeque;

use crate::msg::{Delivery, DeliveryStatus, FrameMsg};
use crate::node::SensorNode;
use crate::report::{
    FleetReport, NodeReport, OccupancyChange, OccupancyTrajectory, ServeTotals, ShardReport,
};
use pcount_dataset::{IrDataset, GRID_SIZE};
use pcount_kernels::{CpuPool, Deployment, SimError};
use pcount_postproc::MajorityVoter;
use pcount_resilience::{AttemptOutcome, ResilienceConfig, ResilientDeployment};
use pcount_telemetry::slo;
use pcount_telemetry::{ErrorBudget, HistogramCounts, SloSnapshot};

/// A time-windowed fault storm: a subset of nodes runs at a (usually much
/// higher) fault intensity for the middle stretch of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct StormConfig {
    /// Fault intensity inside the storm window (the fleet's baseline
    /// [`FleetConfig::fault_intensity`] applies outside it).
    pub intensity: f64,
    /// Every `node_stride`-th node is storm-affected (`1` = the whole
    /// fleet).
    pub node_stride: usize,
    /// Storm window as fractions of each affected node's frame count:
    /// frames in `[window.0 * n, window.1 * n)` are injected at the storm
    /// intensity.
    pub window: (f64, f64),
}

impl StormConfig {
    /// Whether `node` is inside the storm's blast radius.
    pub fn affects(&self, node: usize) -> bool {
        node.is_multiple_of(self.node_stride.max(1))
    }
}

impl Default for StormConfig {
    /// A heavy storm over a third of the fleet for the middle half of the
    /// run.
    fn default() -> Self {
        Self {
            intensity: 0.6,
            node_stride: 3,
            window: (0.25, 0.75),
        }
    }
}

/// Configuration of a [`FleetService`] co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated sensor nodes.
    pub nodes: usize,
    /// Number of rooms; node `i` reports into room `i % rooms`.
    pub rooms: usize,
    /// Number of service shards; room `r` is served by shard
    /// `r % shards`, so a room never splits across shards.
    pub shards: usize,
    /// Frames in each node's (wrapping) session window.
    pub frames_per_node: usize,
    /// Nominal sensor frame period, in milliseconds (the paper's stream
    /// is 10 FPS = 100 ms).
    pub frame_period_ms: u32,
    /// Baseline fault intensity of every node's [`FaultPlan`]
    /// (`FaultConfig::uniform` knob).
    ///
    /// [`FaultPlan`]: pcount_resilience::FaultPlan
    /// [`FaultConfig::uniform`]: pcount_resilience::FaultConfig::uniform
    pub fault_intensity: f64,
    /// Optional time-windowed fault storm on top of the baseline chaos.
    pub storm: Option<StormConfig>,
    /// Maximum per-node constant clock skew (± milliseconds), drawn from
    /// the fleet seed.
    pub clock_skew_max_ms: u32,
    /// Bounded per-shard queue capacity; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Maximum frames the shard server batches per dispatch.
    pub batch_max: usize,
    /// Fixed virtual cost of dispatching one batch, in nanoseconds.
    pub batch_overhead_ns: u64,
    /// Queue depth at or above which the shard throttles its nodes
    /// (backpressure: throttled nodes downsample every other frame).
    pub high_watermark: usize,
    /// Queue depth at or below which the shard releases the throttle.
    pub low_watermark: usize,
    /// Clock of the shard's inference server, in Hz, converting the
    /// deployment's per-frame cycles into virtual service time.
    pub service_clock_hz: u64,
    /// Sliding window (node-caused outcomes) of the sick-node detector.
    pub health_window: usize,
    /// Error-budget burn (milli-units over the window snapshot) at or
    /// above which a node is quarantined.
    pub quarantine_burn_milli: i64,
    /// Consecutive clean outcomes a quarantined node needs before
    /// readmission (the hysteresis that stops flapping).
    pub readmit_after: u32,
    /// Per-frame supervision policy (retries, backoff, budgets) and the
    /// error budget nodes are graded against.
    pub resilience: ResilienceConfig,
    /// Root seed: all per-node chaos, phases and skews derive from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    /// A 240-node / 24-room / 4-shard building at 10 FPS with mild
    /// baseline chaos.
    fn default() -> Self {
        Self {
            nodes: 240,
            rooms: 24,
            shards: 4,
            frames_per_node: 24,
            frame_period_ms: 100,
            fault_intensity: 0.08,
            storm: None,
            clock_skew_max_ms: 150,
            queue_cap: 64,
            batch_max: 8,
            batch_overhead_ns: 200_000,
            high_watermark: 48,
            low_watermark: 16,
            service_clock_hz: 400_000_000,
            health_window: 8,
            quarantine_burn_milli: 7_000,
            readmit_after: 6,
            resilience: ResilienceConfig::default(),
            seed: 0,
        }
    }
}

impl FleetConfig {
    /// A small fleet for CI smoke runs: still ≥ 200 nodes (the acceptance
    /// floor) but with short per-node windows.
    pub fn smoke() -> Self {
        Self {
            nodes: 200,
            rooms: 20,
            frames_per_node: 6,
            ..Self::default()
        }
    }

    /// Panics when the knobs are inconsistent (empty fleet, watermarks
    /// inverted or above the queue cap, zero-length windows).
    pub fn validate(&self) {
        assert!(self.nodes > 0, "fleet needs at least one node");
        assert!(
            self.rooms > 0 && self.rooms <= self.nodes,
            "rooms in 1..=nodes"
        );
        assert!(
            self.shards > 0 && self.shards <= self.rooms,
            "shards in 1..=rooms"
        );
        assert!(self.frames_per_node > 0, "nodes need at least one frame");
        assert!(self.queue_cap > 0, "queue capacity must be positive");
        assert!(
            self.low_watermark < self.high_watermark && self.high_watermark <= self.queue_cap,
            "watermarks must satisfy low < high <= cap"
        );
        assert!(self.health_window > 0, "health window must be positive");
        assert!(
            self.readmit_after > 0,
            "readmission streak must be positive"
        );
        assert!(self.service_clock_hz > 0, "service clock must be positive");
    }
}

/// What the serial plan decided for one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// Dropped at the sensor: nothing arrives.
    Gap,
    /// Shed by admission control (queue at capacity).
    Shed,
    /// Downsampled at the source under backpressure.
    Downsampled,
    /// Admitted and waiting for its batch (transient plan state; every
    /// queued message is resolved to `Execute` by the final drain).
    Queued,
    /// Scheduled onto the shard server.
    Execute {
        /// Index into the execution list (and the parallel results).
        exec_idx: usize,
        /// Nominal batch completion time (the whole batch completes as a
        /// unit), before per-frame retry overhead.
        completion_ns: i64,
    },
}

/// One planned delivery: the message plus the front-end's decision.
#[derive(Debug, Clone, Copy)]
struct PlannedDelivery {
    msg: FrameMsg,
    room: usize,
    shard: usize,
    decision: Decision,
    depth_after: usize,
}

/// Serial simulation state of one shard's bounded queue + batch server.
struct ShardSim {
    /// Queued planned-delivery indices, FIFO.
    queue: VecDeque<usize>,
    /// When the shard's server is next free (virtual ns).
    server_free_ns: i64,
    /// Backpressure state (hysteresis between the watermarks).
    throttled: bool,
    /// Highest queue depth observed.
    peak_depth: usize,
    /// Queue depth sampled at every arrival.
    depth_counts: HistogramCounts,
}

impl ShardSim {
    fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            server_free_ns: 0,
            throttled: false,
            peak_depth: 0,
            depth_counts: HistogramCounts::empty(),
        }
    }
}

/// Serial fold state of one node: fusion estimator, health window and
/// accounting.
struct NodeState {
    voter: MajorityVoter,
    last_good: Option<usize>,
    /// The node's current contribution to its room's occupancy.
    contrib: usize,
    /// Trailing node-caused outcomes: `0` good, `1` gap, `2` fallback.
    window: VecDeque<u8>,
    quarantined: bool,
    clean_streak: u32,
    deliveries: u64,
    gaps: u64,
    shed: u64,
    downsampled: u64,
    ok: u64,
    recovered: u64,
    fallback: u64,
    fused: u64,
    quarantined_frames: u64,
    retries: u64,
    cpu_resets: u64,
    trips: u64,
    readmissions: u64,
    recovery_counts: HistogramCounts,
}

impl NodeState {
    fn new(voter_window: usize) -> Self {
        Self {
            voter: MajorityVoter::new(voter_window.max(1)),
            last_good: None,
            contrib: 0,
            window: VecDeque::new(),
            quarantined: false,
            clean_streak: 0,
            deliveries: 0,
            gaps: 0,
            shed: 0,
            downsampled: 0,
            ok: 0,
            recovered: 0,
            fallback: 0,
            fused: 0,
            quarantined_frames: 0,
            retries: 0,
            cpu_resets: 0,
            trips: 0,
            readmissions: 0,
            recovery_counts: HistogramCounts::empty(),
        }
    }

    /// Executed frames that produced any outcome (admitted work).
    fn admitted(&self) -> u64 {
        self.ok + self.recovered + self.fallback
    }

    /// Frames that produced no fresh fused prediction — what the node is
    /// graded against its error budget on.
    fn degraded(&self) -> u64 {
        self.deliveries - self.fused
    }

    /// The windowed health snapshot the sick-node detector judges. This
    /// is deliberately a real [`SloSnapshot`] — the quarantine decision
    /// reads `error_budget_burn_milli` off the same SLO surface that
    /// shard reports export, not a private heuristic.
    fn window_snapshot(&self, budget: &ErrorBudget) -> SloSnapshot {
        let gaps = self.window.iter().filter(|&&v| v == 1).count() as u64;
        let fallbacks = self.window.iter().filter(|&&v| v == 2).count() as u64;
        let total = self.window.len() as u64;
        SloSnapshot {
            counters: vec![(slo::FLEET_GAPS, gaps), (slo::FALLBACK_FRAMES, fallbacks)],
            error_budget_burn_milli: budget.burn_milli(gaps + fallbacks, total),
            ..SloSnapshot::default()
        }
    }

    /// The node's whole-run SLO snapshot, in canonical counter order
    /// (fixed so shard folds are order-independent by construction).
    fn run_snapshot(&self, budget: &ErrorBudget) -> SloSnapshot {
        SloSnapshot {
            counters: vec![
                (slo::FLEET_REQUESTS, self.deliveries - self.gaps),
                (slo::FLEET_ADMITTED, self.admitted()),
                (slo::FLEET_SHED, self.shed),
                (slo::FLEET_DOWNSAMPLED, self.downsampled),
                (slo::FLEET_GAPS, self.gaps),
                (slo::FLEET_FUSED, self.fused),
                (slo::FLEET_QUARANTINED_FRAMES, self.quarantined_frames),
                (slo::FLEET_QUARANTINE_TRIPS, self.trips),
                (slo::FLEET_READMISSIONS, self.readmissions),
                (slo::RETRIES, self.retries),
                (slo::FALLBACK_FRAMES, self.fallback),
                (slo::QUARANTINES, self.cpu_resets),
            ],
            error_budget_burn_milli: budget.burn_milli(self.degraded(), self.deliveries),
            recovery_latency: self.recovery_counts.summarize(),
            recovery_counts: self.recovery_counts.clone(),
        }
    }
}

/// The deterministic multi-node serving co-simulation.
///
/// Owns the provisioned [`SensorNode`] actors and the (shared, per-fleet)
/// [`ResilientDeployment`] every shard serves with. See the module docs
/// for the three-phase execution model.
pub struct FleetService {
    supervised: ResilientDeployment,
    cfg: FleetConfig,
    nodes: Vec<SensorNode>,
    /// Nominal virtual service cost of one frame on a shard server, in
    /// nanoseconds: the deployment's measured per-inference cycles at
    /// [`FleetConfig::service_clock_hz`].
    per_frame_ns: u64,
}

impl FleetService {
    /// Provisions a fleet of `cfg.nodes` actors over `data` and wraps
    /// `deployment` in the per-frame supervisor.
    ///
    /// # Errors
    ///
    /// Propagates the simulator error if the deployment cannot run a
    /// probe frame (the probe measures the nominal per-frame cost the
    /// admission plan schedules with).
    pub fn new(
        deployment: Deployment,
        cfg: FleetConfig,
        data: &IrDataset,
    ) -> Result<Self, SimError> {
        cfg.validate();
        let probe = deployment.report(&vec![0.0; GRID_SIZE * GRID_SIZE])?;
        let per_frame_ns = probe
            .cycles
            .saturating_mul(1_000_000_000)
            .div_euclid(cfg.service_clock_hz)
            .max(1);
        let nodes = (0..cfg.nodes)
            .map(|id| SensorNode::provision(id, data, &cfg))
            .collect();
        Ok(Self {
            supervised: ResilientDeployment::new(deployment, cfg.resilience.clone()),
            cfg,
            nodes,
            per_frame_ns,
        })
    }

    /// The provisioned node actors.
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Nominal virtual service cost of one frame (ns) on a shard server.
    pub fn per_frame_ns(&self) -> u64 {
        self.per_frame_ns
    }

    /// A warmed CPU pool sized for `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates the simulator error if the warm-up inference fails.
    pub fn make_pool(&self, threads: usize) -> Result<CpuPool, SimError> {
        self.supervised.inner().make_pool(threads)
    }

    /// Runs the whole co-simulation across `pool` and folds it into a
    /// [`FleetReport`]. Bit-identical for every pool width.
    pub fn run(&self, pool: &mut CpuPool) -> FleetReport {
        let (planned, mut sims, exec_list) = self.plan();
        let execs = self.execute(&planned, &exec_list, pool);
        self.fold(planned, &mut sims, execs)
    }

    /// Phase 1 (serial): merge all node messages into virtual-time order
    /// and simulate every shard's admission control, bounded queue,
    /// backpressure hysteresis and batch server against the nominal
    /// per-frame cost.
    fn plan(&self) -> (Vec<PlannedDelivery>, Vec<ShardSim>, Vec<usize>) {
        let mut events: Vec<FrameMsg> = self.nodes.iter().flat_map(|n| n.messages()).collect();
        events.sort_by_key(|m| (m.arrival_ns, m.node, m.seq));
        let mut planned: Vec<PlannedDelivery> = Vec::with_capacity(events.len());
        let mut sims: Vec<ShardSim> = (0..self.cfg.shards).map(|_| ShardSim::new()).collect();
        let mut throttle_ctr = vec![0u64; self.nodes.len()];
        let mut exec_list: Vec<usize> = Vec::new();
        for msg in events {
            let node = &self.nodes[msg.node];
            let (room, shard) = (node.room, node.shard);
            // Let this shard's server catch up to the arrival instant
            // before judging the queue: frames it has already started
            // serving no longer occupy queue slots.
            Self::drain(
                &mut planned,
                &mut sims[shard],
                msg.arrival_ns,
                &mut exec_list,
                &self.cfg,
                self.per_frame_ns,
            );
            let idx = planned.len();
            let sim = &mut sims[shard];
            let decision = if node.stream.ticks[msg.seq].frame.is_none() {
                Decision::Gap
            } else if sim.queue.len() >= self.cfg.queue_cap {
                Decision::Shed
            } else if sim.throttled && {
                throttle_ctr[msg.node] += 1;
                throttle_ctr[msg.node] % 2 == 1
            } {
                Decision::Downsampled
            } else {
                Decision::Queued
            };
            planned.push(PlannedDelivery {
                msg,
                room,
                shard,
                decision,
                depth_after: 0,
            });
            if decision == Decision::Queued {
                sim.queue.push_back(idx);
            }
            let depth = sim.queue.len();
            planned[idx].depth_after = depth;
            sim.peak_depth = sim.peak_depth.max(depth);
            sim.depth_counts.record(depth as u64);
            if depth >= self.cfg.high_watermark {
                sim.throttled = true;
            } else if depth <= self.cfg.low_watermark {
                sim.throttled = false;
            }
        }
        for sim in &mut sims {
            Self::drain(
                &mut planned,
                sim,
                i64::MAX,
                &mut exec_list,
                &self.cfg,
                self.per_frame_ns,
            );
            debug_assert!(sim.queue.is_empty(), "final drain empties every queue");
        }
        (planned, sims, exec_list)
    }

    /// Forms and schedules batches on one shard server up to virtual time
    /// `now`: while the server can start a batch no later than `now`, up
    /// to `batch_max` queued frames are dispatched as one unit.
    fn drain(
        planned: &mut [PlannedDelivery],
        sim: &mut ShardSim,
        now: i64,
        exec_list: &mut Vec<usize>,
        cfg: &FleetConfig,
        per_frame_ns: u64,
    ) {
        while let Some(&front) = sim.queue.front() {
            let start = sim.server_free_ns.max(planned[front].msg.arrival_ns);
            if start > now {
                break;
            }
            let take = sim.queue.len().min(cfg.batch_max.max(1));
            let service_ns = cfg.batch_overhead_ns + per_frame_ns * take as u64;
            let completion_ns = start.saturating_add(service_ns as i64);
            for _ in 0..take {
                let idx = sim.queue.pop_front().expect("batch members queued");
                let exec_idx = exec_list.len();
                exec_list.push(idx);
                planned[idx].decision = Decision::Execute {
                    exec_idx,
                    completion_ns,
                };
            }
            sim.server_free_ns = completion_ns;
        }
    }

    /// Phase 2 (parallel): run every scheduled frame's attempt loop across
    /// the pool. Execution order never affects results — each attempt
    /// loop restores its CPU from the pristine base and is a pure
    /// function of `(frame, stall)`.
    fn execute(
        &self,
        planned: &[PlannedDelivery],
        exec_list: &[usize],
        pool: &mut CpuPool,
    ) -> Vec<AttemptOutcome> {
        let m = exec_list.len();
        if m == 0 {
            return Vec::new();
        }
        let mut out: Vec<Option<AttemptOutcome>> = (0..m).map(|_| None).collect();
        let (base, cpus) = pool.split_mut();
        let workers = cpus.len().max(1);
        let chunk = m.div_ceil(workers);
        let slots = pcount_runtime::SendPtr::new(out.as_mut_ptr());
        pcount_runtime::current().par_chunks_mut(cpus, 1, 0, |w, cpu_slot| {
            let cpu = &mut cpu_slot[0];
            let hi = ((w + 1) * chunk).min(m);
            for k in (w * chunk)..hi {
                let p = &planned[exec_list[k]];
                let tick = &self.nodes[p.msg.node].stream.ticks[p.msg.seq];
                let frame = tick.frame.as_deref().expect("executed ticks carry data");
                let outcome = self.supervised.attempt_frame(cpu, base, frame, tick.stall);
                // SAFETY: worker ranges are disjoint by construction, so
                // every slot has exactly one writer, and `out` is not
                // read until the pool group completes.
                unsafe { *slots.ptr().add(k) = Some(outcome) };
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every exec slot ran"))
            .collect()
    }

    /// Phase 3 (serial): replay outcomes in arrival order through node
    /// health windows, quarantine hysteresis and room fusion, and fold
    /// everything into the report.
    fn fold(
        &self,
        planned: Vec<PlannedDelivery>,
        sims: &mut [ShardSim],
        execs: Vec<AttemptOutcome>,
    ) -> FleetReport {
        let cfg = &self.cfg;
        let budget = &cfg.resilience.error_budget;
        let max_retries = cfg.resilience.retry.max_retries;
        let clock_hz = cfg.resilience.clock_hz.max(1);
        let mut states: Vec<NodeState> = (0..self.nodes.len())
            .map(|_| NodeState::new(cfg.resilience.voter_window))
            .collect();
        let mut shard_latency: Vec<HistogramCounts> =
            (0..cfg.shards).map(|_| HistogramCounts::empty()).collect();
        let mut room_totals = vec![0usize; cfg.rooms];
        let mut building = 0usize;
        let mut changes: Vec<OccupancyChange> = Vec::new();
        let mut deliveries: Vec<Delivery> = Vec::with_capacity(planned.len());
        for (i, p) in planned.iter().enumerate() {
            let ns = &mut states[p.msg.node];
            ns.deliveries += 1;
            let (status, prediction, latency_ns) = match p.decision {
                Decision::Gap => {
                    ns.gaps += 1;
                    (DeliveryStatus::Gap, None, None)
                }
                Decision::Shed => {
                    ns.shed += 1;
                    (DeliveryStatus::Shed, None, None)
                }
                Decision::Downsampled => {
                    ns.downsampled += 1;
                    (DeliveryStatus::Downsampled, None, None)
                }
                Decision::Queued => unreachable!("final drain resolves every queued frame"),
                Decision::Execute {
                    exec_idx,
                    completion_ns,
                } => {
                    let exec = &execs[exec_idx];
                    let retries = exec.failed_attempts.min(max_retries);
                    let backoff_ms = self.supervised.total_backoff_ms(i, retries);
                    ns.retries += retries as u64;
                    ns.cpu_resets += exec.failed_attempts as u64;
                    // Retry overhead is charged to the affected request
                    // alone (attributable tail latency) — it never shifts
                    // the planned schedule, which keeps the admission
                    // plan independent of execution.
                    let extra_ns = if exec.failed_attempts > 0 {
                        let recovery_ns = exec.wasted_cycles.saturating_mul(1_000_000_000)
                            / clock_hz
                            + backoff_ms * 1_000_000;
                        ns.recovery_counts.record(recovery_ns);
                        recovery_ns
                    } else {
                        0
                    };
                    let completion = completion_ns.saturating_add(extra_ns as i64);
                    let latency = completion.saturating_sub(p.msg.arrival_ns).max(0) as u64;
                    match &exec.run {
                        Some(run) => {
                            if exec.failed_attempts == 0 {
                                ns.ok += 1;
                                (DeliveryStatus::Ok, Some(run.prediction), Some(latency))
                            } else {
                                ns.recovered += 1;
                                (
                                    DeliveryStatus::Recovered {
                                        failed_attempts: exec.failed_attempts,
                                    },
                                    Some(run.prediction),
                                    Some(latency),
                                )
                            }
                        }
                        None => {
                            ns.fallback += 1;
                            (DeliveryStatus::Fallback, None, Some(latency))
                        }
                    }
                }
            };
            if let Some(lat) = latency_ns {
                shard_latency[p.shard].record(lat);
                pcount_telemetry::histogram(slo::FLEET_REQUEST_LATENCY).record(lat);
            }
            pcount_telemetry::histogram(slo::FLEET_QUEUE_DEPTH).record(p.depth_after as u64);
            // Fusion is judged against the quarantine state at delivery
            // time; the health update below only affects later frames.
            let was_quarantined = ns.quarantined;
            let mut fused = false;
            let new_contrib = match prediction {
                Some(pred) => {
                    let est = ns.voter.push(pred);
                    ns.last_good = Some(est);
                    if was_quarantined {
                        ns.quarantined_frames += 1;
                        ns.contrib
                    } else {
                        fused = true;
                        ns.fused += 1;
                        est
                    }
                }
                None => {
                    let est = ns.voter.push_missing().or(ns.last_good).unwrap_or(0);
                    if status.executed() && was_quarantined {
                        ns.quarantined_frames += 1;
                    }
                    if was_quarantined {
                        // Quarantined rooms hold their last trusted value.
                        ns.contrib
                    } else {
                        est
                    }
                }
            };
            if new_contrib != ns.contrib {
                room_totals[p.room] = room_totals[p.room] - ns.contrib + new_contrib;
                building = building - ns.contrib + new_contrib;
                ns.contrib = new_contrib;
                changes.push(OccupancyChange {
                    seq: i as u64,
                    room: p.room as u32,
                    room_count: room_totals[p.room] as u32,
                    building: building as u32,
                });
            }
            // Health accounting: only node-caused outcomes move the
            // detector (shed/downsampled frames are the service's doing).
            let health_sample = match status {
                DeliveryStatus::Gap => Some(1u8),
                DeliveryStatus::Fallback => Some(2u8),
                DeliveryStatus::Ok | DeliveryStatus::Recovered { .. } => Some(0u8),
                DeliveryStatus::Shed | DeliveryStatus::Downsampled => None,
            };
            if let Some(sample) = health_sample {
                if ns.quarantined {
                    if sample == 0 {
                        ns.clean_streak += 1;
                        if ns.clean_streak >= cfg.readmit_after {
                            ns.quarantined = false;
                            ns.readmissions += 1;
                            ns.clean_streak = 0;
                            ns.window.clear();
                        }
                    } else {
                        ns.clean_streak = 0;
                    }
                } else {
                    ns.window.push_back(sample);
                    if ns.window.len() > cfg.health_window {
                        ns.window.pop_front();
                    }
                    if ns.window.len() == cfg.health_window {
                        let snapshot = ns.window_snapshot(budget);
                        if snapshot.error_budget_burn_milli >= cfg.quarantine_burn_milli {
                            ns.quarantined = true;
                            ns.trips += 1;
                            ns.clean_streak = 0;
                            ns.window.clear();
                        }
                    }
                }
            }
            deliveries.push(Delivery {
                msg: p.msg,
                room: p.room,
                shard: p.shard,
                status,
                queue_depth_after: p.depth_after,
                latency_ns,
                quarantined: was_quarantined,
                fused,
            });
        }
        self.reports(
            states,
            sims,
            shard_latency,
            deliveries,
            changes,
            room_totals,
        )
    }

    /// Assembles node/shard/fleet reports and mirrors the run's totals
    /// into the global `fleet/*` telemetry instruments.
    #[allow(clippy::too_many_arguments)]
    fn reports(
        &self,
        states: Vec<NodeState>,
        sims: &mut [ShardSim],
        shard_latency: Vec<HistogramCounts>,
        deliveries: Vec<Delivery>,
        changes: Vec<OccupancyChange>,
        room_totals: Vec<usize>,
    ) -> FleetReport {
        let cfg = &self.cfg;
        let budget = &cfg.resilience.error_budget;
        let node_reports: Vec<NodeReport> = self
            .nodes
            .iter()
            .zip(states.iter())
            .map(|(node, ns)| NodeReport {
                node: node.id,
                room: node.room,
                shard: node.shard,
                deliveries: ns.deliveries,
                gaps: ns.gaps,
                shed: ns.shed,
                downsampled: ns.downsampled,
                ok: ns.ok,
                recovered: ns.recovered,
                fallback: ns.fallback,
                fused: ns.fused,
                quarantined_frames: ns.quarantined_frames,
                quarantine_trips: ns.trips,
                readmissions: ns.readmissions,
                retries: ns.retries,
                cpu_resets: ns.cpu_resets,
                burn_milli: budget.burn_milli(ns.degraded(), ns.deliveries),
                slo: ns.run_snapshot(budget),
            })
            .collect();
        let shard_reports: Vec<ShardReport> = (0..cfg.shards)
            .map(|shard| {
                let members: Vec<&NodeState> = self
                    .nodes
                    .iter()
                    .zip(states.iter())
                    .filter(|(n, _)| n.shard == shard)
                    .map(|(_, s)| s)
                    .collect();
                // The shard SLO is the associative fold of its nodes'
                // snapshots; the burn pools every node's frames so a big
                // healthy node cannot mask a small sick one.
                let slo = members.iter().fold(SloSnapshot::default(), |acc, s| {
                    acc.merge(&s.run_snapshot(budget))
                });
                let burn_milli =
                    budget.burn_milli_total(members.iter().map(|s| (s.degraded(), s.deliveries)));
                let sim = &sims[shard];
                ShardReport {
                    shard,
                    nodes: members.len(),
                    queue_depth_peak: sim.peak_depth as u64,
                    queue_depth: sim.depth_counts.summarize(),
                    latency: shard_latency[shard].summarize(),
                    latency_counts: shard_latency[shard].clone(),
                    burn_milli,
                    slo,
                }
            })
            .collect();
        let totals = ServeTotals {
            requests: states.iter().map(|s| s.deliveries - s.gaps).sum(),
            admitted: states.iter().map(|s| s.admitted()).sum(),
            shed: states.iter().map(|s| s.shed).sum(),
            downsampled: states.iter().map(|s| s.downsampled).sum(),
            gaps: states.iter().map(|s| s.gaps).sum(),
            fused: states.iter().map(|s| s.fused).sum(),
            quarantined_frames: states.iter().map(|s| s.quarantined_frames).sum(),
            quarantine_trips: states.iter().map(|s| s.trips).sum(),
            readmissions: states.iter().map(|s| s.readmissions).sum(),
        };
        for (name, value) in totals.as_counters() {
            if value > 0 {
                pcount_telemetry::counter(name).add(value);
            }
        }
        let queue_depth_peak = sims.iter().map(|s| s.peak_depth).max().unwrap_or(0) as u64;
        let worst_burn = shard_reports
            .iter()
            .map(|s| s.burn_milli)
            .max()
            .unwrap_or(0);
        pcount_telemetry::gauge(slo::FLEET_QUEUE_DEPTH_PEAK).set(queue_depth_peak as i64);
        pcount_telemetry::gauge(slo::FLEET_ERROR_BUDGET_BURN).set(worst_burn);
        let latency_counts = shard_latency
            .iter()
            .fold(HistogramCounts::empty(), |acc, c| acc.merge(c));
        let queue_depth_counts = sims.iter().fold(HistogramCounts::empty(), |acc, s| {
            acc.merge(&s.depth_counts)
        });
        let occupancy =
            OccupancyTrajectory::new(changes, room_totals.iter().map(|&r| r as u32).collect());
        FleetReport {
            nodes: cfg.nodes,
            rooms: cfg.rooms,
            shards: cfg.shards,
            per_frame_ns: self.per_frame_ns,
            totals,
            latency: latency_counts.summarize(),
            latency_counts,
            queue_depth: queue_depth_counts.summarize(),
            queue_depth_peak,
            worst_shard_burn_milli: worst_burn,
            shard_reports,
            node_reports,
            deliveries,
            occupancy,
        }
    }
}
