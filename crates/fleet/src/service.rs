//! The sharded fusion service: virtual-time message scheduling, admission
//! control, bounded queues with backpressure, SLO-driven node quarantine,
//! shard crash/failover with checkpointed recovery and per-room occupancy
//! fusion.
//!
//! # Determinism
//!
//! The whole fleet run follows the serial-plan → parallel-execute →
//! serial-fold pattern of `pcount-resilience`:
//!
//! 1. **Plan (serial).** Every node's messages are merged into one global
//!    virtual-time order `(arrival_ns, node, seq)` and interleaved with
//!    the failover timeline (periodic checkpoints, planned shard crashes
//!    and restarts); each shard's bounded queue, batch server, admission
//!    control, backpressure hysteresis and adaptive watermarks are
//!    simulated against a *nominal* per-frame service cost — so which
//!    frames are shed, downsampled, re-routed, lost in a crash or batched
//!    is a pure function of the fleet seed and the config, never of
//!    execution.
//! 2. **Execute (parallel).** Admitted frames' retry loops
//!    ([`ResilientDeployment::attempt_frame`]) run across the
//!    [`CpuPool`], each on a CPU restored from the pristine base, so
//!    every result is a pure per-frame function.
//! 3. **Fold (serial).** Outcomes are replayed in arrival order through
//!    the same failover timeline (checkpoint snapshots filled, crashed
//!    shards' fusion state rolled back to the last checkpoint with
//!    hold-last-good covering the gap) and per-node health windows
//!    (quarantine/readmission with hysteresis) and per-room fusion,
//!    producing the occupancy trajectory, latency and recovery-time
//!    distributions and SLO accounting.
//!
//! Consequently a [`FleetReport`] is bit-identical for every pool width
//! (asserted by the crate's determinism suite and the serve bench
//! tripwire), crashes included.

use std::collections::VecDeque;
use std::fmt;

use crate::failover::{
    plan_crashes, AdaptiveAdmission, AdaptiveConfig, CrashConfig, CrashEvent, CrashPolicy,
    FailoverEvent, RouteTable, ShardCheckpoint,
};
use crate::msg::{Delivery, DeliveryStatus, FrameMsg};
use crate::node::SensorNode;
use crate::report::{
    CrashReport, FleetReport, NodeReport, OccupancyChange, OccupancyTrajectory, ServeTotals,
    ShardReport,
};
use pcount_dataset::{IrDataset, GRID_SIZE};
use pcount_kernels::{CpuPool, Deployment, SimError};
use pcount_postproc::MajorityVoter;
use pcount_resilience::{AttemptOutcome, ResilienceConfig, ResilientDeployment};
use pcount_telemetry::slo;
use pcount_telemetry::{ErrorBudget, HistogramCounts, SloSnapshot};

/// A time-windowed fault storm: a subset of nodes runs at a (usually much
/// higher) fault intensity for the middle stretch of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct StormConfig {
    /// Fault intensity inside the storm window (the fleet's baseline
    /// [`FleetConfig::fault_intensity`] applies outside it).
    pub intensity: f64,
    /// Every `node_stride`-th node is storm-affected (`1` = the whole
    /// fleet).
    pub node_stride: usize,
    /// Storm window as fractions of each affected node's frame count:
    /// frames in `[window.0 * n, window.1 * n)` are injected at the storm
    /// intensity.
    pub window: (f64, f64),
}

impl StormConfig {
    /// Whether `node` is inside the storm's blast radius.
    pub fn affects(&self, node: usize) -> bool {
        node.is_multiple_of(self.node_stride.max(1))
    }
}

impl Default for StormConfig {
    /// A heavy storm over a third of the fleet for the middle half of the
    /// run.
    fn default() -> Self {
        Self {
            intensity: 0.6,
            node_stride: 3,
            window: (0.25, 0.75),
        }
    }
}

/// Why a [`FleetConfig`] was rejected by [`FleetConfig::validated`]. Each
/// variant names the offending knobs so a misconfigured fleet fails with
/// an actionable error instead of a bare assertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `nodes == 0`.
    NoNodes,
    /// `rooms` outside `1..=nodes`.
    BadRooms {
        /// Configured room count.
        rooms: usize,
        /// Configured node count.
        nodes: usize,
    },
    /// `shards` outside `1..=rooms`.
    BadShards {
        /// Configured shard count.
        shards: usize,
        /// Configured room count.
        rooms: usize,
    },
    /// `frames_per_node == 0`.
    NoFrames,
    /// `queue_cap == 0`.
    ZeroQueueCap,
    /// Watermarks violate `low < high <= cap`.
    BadWatermarks {
        /// Configured low watermark.
        low: usize,
        /// Configured high watermark.
        high: usize,
        /// Configured queue capacity.
        cap: usize,
    },
    /// `health_window == 0`.
    ZeroHealthWindow,
    /// `readmit_after == 0`.
    ZeroReadmitStreak,
    /// `service_clock_hz == 0`.
    ZeroServiceClock,
    /// `checkpoint_period_ms == 0`.
    ZeroCheckpointPeriod,
    /// Crash window violates `0 <= start < end`.
    BadCrashWindow {
        /// Configured crash instant (fraction of the run span).
        start: f64,
        /// Configured restart instant (fraction of the run span).
        end: f64,
    },
    /// Crash jitter is negative or not finite.
    BadCrashJitter,
    /// Adaptive evaluation window is zero.
    BadAdaptiveWindow,
    /// Adaptive `watermark_step == 0` (the controller could never move).
    ZeroAdaptiveStep,
    /// Adaptive thresholds violate `relax < tighten` (no hysteresis gap).
    BadAdaptiveThresholds {
        /// Configured relax threshold (milli-units).
        relax: i64,
        /// Configured tighten threshold (milli-units).
        tighten: i64,
    },
    /// Adaptive watermark floor is zero or above the configured high
    /// watermark.
    BadAdaptiveWatermarkFloor {
        /// Configured floor.
        floor: usize,
        /// Configured high watermark.
        high: usize,
    },
    /// Adaptive `max_downsample_stride < 2` (below the static stride).
    BadAdaptiveStride {
        /// Configured stride ceiling.
        max: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "fleet needs at least one node"),
            ConfigError::BadRooms { rooms, nodes } => {
                write!(
                    f,
                    "rooms must be in 1..=nodes ({rooms} rooms, {nodes} nodes)"
                )
            }
            ConfigError::BadShards { shards, rooms } => {
                write!(
                    f,
                    "shards must be in 1..=rooms ({shards} shards, {rooms} rooms)"
                )
            }
            ConfigError::NoFrames => write!(f, "nodes need at least one frame"),
            ConfigError::ZeroQueueCap => write!(f, "queue capacity must be positive"),
            ConfigError::BadWatermarks { low, high, cap } => write!(
                f,
                "watermarks must satisfy low < high <= cap (low {low}, high {high}, cap {cap})"
            ),
            ConfigError::ZeroHealthWindow => write!(f, "health window must be positive"),
            ConfigError::ZeroReadmitStreak => write!(f, "readmission streak must be positive"),
            ConfigError::ZeroServiceClock => write!(f, "service clock must be positive"),
            ConfigError::ZeroCheckpointPeriod => {
                write!(f, "checkpoint period must be positive")
            }
            ConfigError::BadCrashWindow { start, end } => write!(
                f,
                "crash window must satisfy 0 <= start < end (start {start}, end {end})"
            ),
            ConfigError::BadCrashJitter => {
                write!(f, "crash jitter must be finite and non-negative")
            }
            ConfigError::BadAdaptiveWindow => {
                write!(f, "adaptive evaluation window must be positive")
            }
            ConfigError::ZeroAdaptiveStep => {
                write!(f, "adaptive watermark step must be positive")
            }
            ConfigError::BadAdaptiveThresholds { relax, tighten } => write!(
                f,
                "adaptive thresholds need a hysteresis gap: relax < tighten \
                 (relax {relax}, tighten {tighten})"
            ),
            ConfigError::BadAdaptiveWatermarkFloor { floor, high } => write!(
                f,
                "adaptive watermark floor must be in 1..=high_watermark \
                 (floor {floor}, high {high})"
            ),
            ConfigError::BadAdaptiveStride { max } => {
                write!(f, "adaptive max downsample stride must be >= 2 (got {max})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a [`FleetService`] co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated sensor nodes.
    pub nodes: usize,
    /// Number of rooms; node `i` reports into room `i % rooms`.
    pub rooms: usize,
    /// Number of service shards; room `r` is *homed* on shard
    /// `r % shards` (a crash may migrate it to a failover shard until
    /// the home restarts), so a room never splits across shards.
    pub shards: usize,
    /// Frames in each node's (wrapping) session window.
    pub frames_per_node: usize,
    /// Nominal sensor frame period, in milliseconds (the paper's stream
    /// is 10 FPS = 100 ms).
    pub frame_period_ms: u32,
    /// Baseline fault intensity of every node's [`FaultPlan`]
    /// (`FaultConfig::uniform` knob).
    ///
    /// [`FaultPlan`]: pcount_resilience::FaultPlan
    /// [`FaultConfig::uniform`]: pcount_resilience::FaultConfig::uniform
    pub fault_intensity: f64,
    /// Optional time-windowed fault storm on top of the baseline chaos.
    pub storm: Option<StormConfig>,
    /// Optional deterministic shard-crash/restart schedule (the
    /// shard-level sibling of [`storm`](Self::storm)).
    pub crash: Option<CrashConfig>,
    /// Virtual period of the shard checkpoints a restarting shard
    /// recovers from, in milliseconds. Only exercised when a crash
    /// schedule is configured.
    pub checkpoint_period_ms: u64,
    /// Optional burn-driven adaptive admission: effective watermarks and
    /// downsample stride derived from each shard's live windowed
    /// [`SloSnapshot`] burn. `None` keeps the static knobs.
    pub adaptive: Option<AdaptiveConfig>,
    /// Maximum per-node constant clock skew (± milliseconds), drawn from
    /// the fleet seed.
    pub clock_skew_max_ms: u32,
    /// Bounded per-shard queue capacity; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Maximum frames the shard server batches per dispatch.
    pub batch_max: usize,
    /// Fixed virtual cost of dispatching one batch, in nanoseconds.
    pub batch_overhead_ns: u64,
    /// Queue depth at or above which the shard throttles its nodes
    /// (backpressure: throttled nodes downsample at the source). The
    /// *static* knob — adaptive admission tightens from here.
    pub high_watermark: usize,
    /// Queue depth at or below which the shard releases the throttle.
    pub low_watermark: usize,
    /// Clock of the shard's inference server, in Hz, converting the
    /// deployment's per-frame cycles into virtual service time.
    pub service_clock_hz: u64,
    /// Sliding window (node-caused outcomes) of the sick-node detector.
    pub health_window: usize,
    /// Error-budget burn (milli-units over the window snapshot) at or
    /// above which a node is quarantined.
    pub quarantine_burn_milli: i64,
    /// Consecutive clean outcomes a quarantined node needs before
    /// readmission (the hysteresis that stops flapping).
    pub readmit_after: u32,
    /// Per-frame supervision policy (retries, backoff, budgets) and the
    /// error budget nodes are graded against.
    pub resilience: ResilienceConfig,
    /// Root seed: all per-node chaos, phases, skews and the crash
    /// schedule derive from it.
    pub seed: u64,
}

impl Default for FleetConfig {
    /// A 240-node / 24-room / 4-shard building at 10 FPS with mild
    /// baseline chaos, no crashes and static admission.
    fn default() -> Self {
        Self {
            nodes: 240,
            rooms: 24,
            shards: 4,
            frames_per_node: 24,
            frame_period_ms: 100,
            fault_intensity: 0.08,
            storm: None,
            crash: None,
            checkpoint_period_ms: 400,
            adaptive: None,
            clock_skew_max_ms: 150,
            queue_cap: 64,
            batch_max: 8,
            batch_overhead_ns: 200_000,
            high_watermark: 48,
            low_watermark: 16,
            service_clock_hz: 400_000_000,
            health_window: 8,
            quarantine_burn_milli: 7_000,
            readmit_after: 6,
            resilience: ResilienceConfig::default(),
            seed: 0,
        }
    }
}

impl FleetConfig {
    /// A small fleet for CI smoke runs: still ≥ 200 nodes (the acceptance
    /// floor) but with short per-node windows.
    pub fn smoke() -> Self {
        Self {
            nodes: 200,
            rooms: 20,
            frames_per_node: 6,
            ..Self::default()
        }
    }

    /// Checks every knob for consistency, returning the first violation
    /// as a typed [`ConfigError`].
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] naming the offending knobs when the
    /// configuration is inconsistent (empty fleet, watermarks inverted or
    /// above the queue cap, degenerate crash/adaptive schedules, …).
    pub fn validated(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.rooms == 0 || self.rooms > self.nodes {
            return Err(ConfigError::BadRooms {
                rooms: self.rooms,
                nodes: self.nodes,
            });
        }
        if self.shards == 0 || self.shards > self.rooms {
            return Err(ConfigError::BadShards {
                shards: self.shards,
                rooms: self.rooms,
            });
        }
        if self.frames_per_node == 0 {
            return Err(ConfigError::NoFrames);
        }
        if self.queue_cap == 0 {
            return Err(ConfigError::ZeroQueueCap);
        }
        if self.low_watermark >= self.high_watermark || self.high_watermark > self.queue_cap {
            return Err(ConfigError::BadWatermarks {
                low: self.low_watermark,
                high: self.high_watermark,
                cap: self.queue_cap,
            });
        }
        if self.health_window == 0 {
            return Err(ConfigError::ZeroHealthWindow);
        }
        if self.readmit_after == 0 {
            return Err(ConfigError::ZeroReadmitStreak);
        }
        if self.service_clock_hz == 0 {
            return Err(ConfigError::ZeroServiceClock);
        }
        if self.checkpoint_period_ms == 0 {
            return Err(ConfigError::ZeroCheckpointPeriod);
        }
        if let Some(crash) = &self.crash {
            if !(crash.window.0 >= 0.0 && crash.window.0 < crash.window.1) {
                return Err(ConfigError::BadCrashWindow {
                    start: crash.window.0,
                    end: crash.window.1,
                });
            }
            if !(crash.jitter.is_finite() && crash.jitter >= 0.0) {
                return Err(ConfigError::BadCrashJitter);
            }
        }
        if let Some(adaptive) = &self.adaptive {
            if adaptive.window == 0 {
                return Err(ConfigError::BadAdaptiveWindow);
            }
            if adaptive.watermark_step == 0 {
                return Err(ConfigError::ZeroAdaptiveStep);
            }
            if adaptive.relax_burn_milli >= adaptive.tighten_burn_milli {
                return Err(ConfigError::BadAdaptiveThresholds {
                    relax: adaptive.relax_burn_milli,
                    tighten: adaptive.tighten_burn_milli,
                });
            }
            if adaptive.min_high_watermark == 0 || adaptive.min_high_watermark > self.high_watermark
            {
                return Err(ConfigError::BadAdaptiveWatermarkFloor {
                    floor: adaptive.min_high_watermark,
                    high: self.high_watermark,
                });
            }
            if adaptive.max_downsample_stride < 2 {
                return Err(ConfigError::BadAdaptiveStride {
                    max: adaptive.max_downsample_stride,
                });
            }
        }
        Ok(())
    }

    /// Panics when the knobs are inconsistent — the assertion-style path
    /// over [`validated`](Self::validated).
    pub fn validate(&self) {
        if let Err(e) = self.validated() {
            panic!("invalid fleet config: {e}");
        }
    }
}

/// What the serial plan decided for one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    /// Dropped at the sensor: nothing arrives.
    Gap,
    /// Shed by admission control (queue at capacity, or every shard
    /// down).
    Shed,
    /// Downsampled at the source under backpressure.
    Downsampled,
    /// Admitted and waiting for its batch (transient plan state; every
    /// queued message is resolved to `Execute` or `CrashLost` before the
    /// plan completes).
    Queued,
    /// Lost in a shard crash: queued at the crash instant and disposed
    /// of without executing.
    CrashLost,
    /// Scheduled onto the shard server.
    Execute {
        /// Index into the execution list (and the parallel results).
        exec_idx: usize,
        /// Nominal batch completion time (the whole batch completes as a
        /// unit), before per-frame retry overhead.
        completion_ns: i64,
    },
}

/// One planned delivery: the message plus the front-end's decision.
#[derive(Debug, Clone, Copy)]
struct PlannedDelivery {
    msg: FrameMsg,
    room: usize,
    /// The shard that disposed of the message (the room's *routed* shard
    /// at arrival; re-routing out of a crashed queue updates it to the
    /// shard that actually served the frame).
    shard: usize,
    decision: Decision,
    depth_after: usize,
    /// Served away from the room's home shard (failover admission or a
    /// live queue re-route).
    rerouted: bool,
}

/// Serial simulation state of one shard's bounded queue + batch server.
struct ShardSim {
    /// Queued `(planned index, ready instant)` pairs, FIFO. The ready
    /// instant is the arrival for normal admissions and the crash
    /// instant for frames re-routed out of a crashed queue (they cannot
    /// start before the crash that moved them).
    queue: VecDeque<(usize, i64)>,
    /// When the shard's server is next free (virtual ns).
    server_free_ns: i64,
    /// Backpressure state (hysteresis between the watermarks).
    throttled: bool,
    /// Whether the shard is currently crashed (serves nothing).
    down: bool,
    /// Crashes this shard took during the run.
    crashes: u64,
    /// The shard's admission posture (static or burn-driven).
    adm: AdaptiveAdmission,
    /// Highest queue depth observed.
    peak_depth: usize,
    /// Queue depth sampled at every arrival.
    depth_counts: HistogramCounts,
}

impl ShardSim {
    fn new(adm: AdaptiveAdmission) -> Self {
        Self {
            queue: VecDeque::new(),
            server_free_ns: 0,
            throttled: false,
            down: false,
            crashes: 0,
            adm,
            peak_depth: 0,
            depth_counts: HistogramCounts::empty(),
        }
    }
}

/// Per-crash accounting drafted by the plan phase: how the queue was
/// disposed of and which rooms were in the shard's scope at the crash
/// (the fold's fusion rollback set).
#[derive(Debug, Clone, Default)]
struct CrashDraft {
    queued_at_crash: u64,
    crash_lost: u64,
    rerouted: u64,
    held: u64,
    migrations_out: u64,
    rooms_at_crash: Vec<u32>,
}

/// Everything the serial plan hands to execution and the fold: the
/// per-message decisions plus the failover timeline both phases replay.
struct PlanOutput {
    planned: Vec<PlannedDelivery>,
    sims: Vec<ShardSim>,
    exec_list: Vec<usize>,
    crash_events: Vec<CrashEvent>,
    timeline: Vec<(i64, FailoverEvent)>,
    ckpts: Vec<ShardCheckpoint>,
    drafts: Vec<CrashDraft>,
    migrations: u64,
}

/// Serial fold state of one node: fusion estimator, health window and
/// accounting.
struct NodeState {
    voter: MajorityVoter,
    last_good: Option<usize>,
    /// The node's current contribution to its room's occupancy.
    contrib: usize,
    /// Trailing node-caused outcomes: `0` good, `1` gap, `2` fallback.
    window: VecDeque<u8>,
    quarantined: bool,
    clean_streak: u32,
    deliveries: u64,
    gaps: u64,
    shed: u64,
    downsampled: u64,
    crash_lost: u64,
    rerouted: u64,
    ok: u64,
    recovered: u64,
    fallback: u64,
    fused: u64,
    quarantined_frames: u64,
    retries: u64,
    cpu_resets: u64,
    trips: u64,
    readmissions: u64,
    recovery_counts: HistogramCounts,
}

impl NodeState {
    fn new(voter_window: usize) -> Self {
        Self {
            voter: MajorityVoter::new(voter_window.max(1)),
            last_good: None,
            contrib: 0,
            window: VecDeque::new(),
            quarantined: false,
            clean_streak: 0,
            deliveries: 0,
            gaps: 0,
            shed: 0,
            downsampled: 0,
            crash_lost: 0,
            rerouted: 0,
            ok: 0,
            recovered: 0,
            fallback: 0,
            fused: 0,
            quarantined_frames: 0,
            retries: 0,
            cpu_resets: 0,
            trips: 0,
            readmissions: 0,
            recovery_counts: HistogramCounts::empty(),
        }
    }

    /// Executed frames that produced any outcome (admitted work).
    fn admitted(&self) -> u64 {
        self.ok + self.recovered + self.fallback
    }

    /// Frames that produced no fresh fused prediction — what the node is
    /// graded against its error budget on.
    fn degraded(&self) -> u64 {
        self.deliveries - self.fused
    }

    /// The windowed health snapshot the sick-node detector judges. This
    /// is deliberately a real [`SloSnapshot`] — the quarantine decision
    /// reads `error_budget_burn_milli` off the same SLO surface that
    /// shard reports export, not a private heuristic.
    fn window_snapshot(&self, budget: &ErrorBudget) -> SloSnapshot {
        let gaps = self.window.iter().filter(|&&v| v == 1).count() as u64;
        let fallbacks = self.window.iter().filter(|&&v| v == 2).count() as u64;
        let total = self.window.len() as u64;
        SloSnapshot {
            counters: vec![(slo::FLEET_GAPS, gaps), (slo::FALLBACK_FRAMES, fallbacks)],
            error_budget_burn_milli: budget.burn_milli(gaps + fallbacks, total),
            ..SloSnapshot::default()
        }
    }

    /// The node's whole-run SLO snapshot, in canonical counter order
    /// (fixed so shard folds are order-independent by construction).
    fn run_snapshot(&self, budget: &ErrorBudget) -> SloSnapshot {
        SloSnapshot {
            counters: vec![
                (slo::FLEET_REQUESTS, self.deliveries - self.gaps),
                (slo::FLEET_ADMITTED, self.admitted()),
                (slo::FLEET_SHED, self.shed),
                (slo::FLEET_DOWNSAMPLED, self.downsampled),
                (slo::FLEET_GAPS, self.gaps),
                (slo::FLEET_FUSED, self.fused),
                (slo::FLEET_QUARANTINED_FRAMES, self.quarantined_frames),
                (slo::FLEET_QUARANTINE_TRIPS, self.trips),
                (slo::FLEET_READMISSIONS, self.readmissions),
                (slo::FLEET_CRASH_LOST, self.crash_lost),
                (slo::FLEET_REROUTED, self.rerouted),
                (slo::RETRIES, self.retries),
                (slo::FALLBACK_FRAMES, self.fallback),
                (slo::QUARANTINES, self.cpu_resets),
            ],
            error_budget_burn_milli: budget.burn_milli(self.degraded(), self.deliveries),
            recovery_latency: self.recovery_counts.summarize(),
            recovery_counts: self.recovery_counts.clone(),
        }
    }

    /// Restores the fusion/health estimator from a checkpointed node
    /// record. The emitted room contribution is deliberately untouched —
    /// hold-last-good covers the rolled-back gap.
    fn restore(&mut self, ck: &crate::failover::NodeFusionCkpt) {
        self.voter = ck.voter.clone();
        self.last_good = ck.last_good;
        self.window = ck.health.clone();
        self.quarantined = ck.quarantined;
        self.clean_streak = ck.clean_streak;
    }

    /// Resets the fusion/health estimator to boot state — what a shard
    /// that crashed before any checkpoint existed recovers with.
    fn reset_estimator(&mut self, voter_window: usize) {
        self.voter = MajorityVoter::new(voter_window.max(1));
        self.last_good = None;
        self.window.clear();
        self.quarantined = false;
        self.clean_streak = 0;
    }
}

/// The deterministic multi-node serving co-simulation.
///
/// Owns the provisioned [`SensorNode`] actors and the (shared, per-fleet)
/// [`ResilientDeployment`] every shard serves with. See the module docs
/// for the three-phase execution model.
pub struct FleetService {
    supervised: ResilientDeployment,
    cfg: FleetConfig,
    nodes: Vec<SensorNode>,
    /// Nominal virtual service cost of one frame on a shard server, in
    /// nanoseconds: the deployment's measured per-inference cycles at
    /// [`FleetConfig::service_clock_hz`].
    per_frame_ns: u64,
}

impl FleetService {
    /// Provisions a fleet of `cfg.nodes` actors over `data` and wraps
    /// `deployment` in the per-frame supervisor.
    ///
    /// # Errors
    ///
    /// Propagates the simulator error if the deployment cannot run a
    /// probe frame (the probe measures the nominal per-frame cost the
    /// admission plan schedules with).
    pub fn new(
        deployment: Deployment,
        cfg: FleetConfig,
        data: &IrDataset,
    ) -> Result<Self, SimError> {
        cfg.validate();
        let probe = deployment.report(&vec![0.0; GRID_SIZE * GRID_SIZE])?;
        let per_frame_ns = probe
            .cycles
            .saturating_mul(1_000_000_000)
            .div_euclid(cfg.service_clock_hz)
            .max(1);
        let nodes = (0..cfg.nodes)
            .map(|id| SensorNode::provision(id, data, &cfg))
            .collect();
        Ok(Self {
            supervised: ResilientDeployment::new(deployment, cfg.resilience.clone()),
            cfg,
            nodes,
            per_frame_ns,
        })
    }

    /// The provisioned node actors.
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Nominal virtual service cost of one frame (ns) on a shard server.
    pub fn per_frame_ns(&self) -> u64 {
        self.per_frame_ns
    }

    /// The crash schedule this fleet would execute, in crash order —
    /// a pure function of the config and seed (empty without a
    /// [`FleetConfig::crash`] schedule).
    pub fn crash_schedule(&self) -> Vec<CrashEvent> {
        let Some(crash) = &self.cfg.crash else {
            return Vec::new();
        };
        let (start_ns, end_ns) = self.run_span();
        plan_crashes(crash, self.cfg.shards, self.cfg.seed, start_ns, end_ns)
    }

    /// First/last arrival instants over every node's messages.
    fn run_span(&self) -> (i64, i64) {
        let mut start = i64::MAX;
        let mut end = i64::MIN;
        for node in &self.nodes {
            for m in node.messages() {
                start = start.min(m.arrival_ns);
                end = end.max(m.arrival_ns);
            }
        }
        if start > end {
            (0, 0)
        } else {
            (start, end)
        }
    }

    /// A warmed CPU pool sized for `threads` workers.
    ///
    /// # Errors
    ///
    /// Propagates the simulator error if the warm-up inference fails.
    pub fn make_pool(&self, threads: usize) -> Result<CpuPool, SimError> {
        self.supervised.inner().make_pool(threads)
    }

    /// Runs the whole co-simulation across `pool` and folds it into a
    /// [`FleetReport`]. Bit-identical for every pool width.
    pub fn run(&self, pool: &mut CpuPool) -> FleetReport {
        let plan = self.plan();
        let execs = self.execute(&plan.planned, &plan.exec_list, pool);
        self.fold(plan, execs)
    }

    /// Phase 1 (serial): merge all node messages into virtual-time order,
    /// interleave the failover timeline (checkpoints, crashes, restarts)
    /// and simulate every shard's admission control, bounded queue,
    /// backpressure hysteresis and batch server against the nominal
    /// per-frame cost.
    fn plan(&self) -> PlanOutput {
        let cfg = &self.cfg;
        let mut events: Vec<FrameMsg> = self.nodes.iter().flat_map(|n| n.messages()).collect();
        events.sort_by_key(|m| (m.arrival_ns, m.node, m.seq));
        let start_ns = events.first().map(|m| m.arrival_ns).unwrap_or(0);
        let end_ns = events.last().map(|m| m.arrival_ns).unwrap_or(0);
        let crash_events = match &cfg.crash {
            Some(crash) => plan_crashes(crash, cfg.shards, cfg.seed, start_ns, end_ns),
            None => Vec::new(),
        };
        let period_ns = (cfg.checkpoint_period_ms as i64).saturating_mul(1_000_000);
        let timeline =
            crate::failover::failover_timeline(&crash_events, start_ns, end_ns, period_ns);
        let mut route = RouteTable::new(cfg.rooms, cfg.shards);
        let mut ckpts: Vec<ShardCheckpoint> = Vec::new();
        let mut drafts: Vec<CrashDraft> = (0..crash_events.len())
            .map(|_| CrashDraft::default())
            .collect();
        let mut migrations = 0u64;
        let mut planned: Vec<PlannedDelivery> = Vec::with_capacity(events.len());
        let mut sims: Vec<ShardSim> = (0..cfg.shards)
            .map(|_| {
                ShardSim::new(AdaptiveAdmission::new(
                    cfg.adaptive.clone(),
                    cfg.high_watermark,
                    cfg.low_watermark,
                ))
            })
            .collect();
        let mut throttle_ctr = vec![0u64; self.nodes.len()];
        let mut exec_list: Vec<usize> = Vec::new();
        let mut ti = 0usize;
        for msg in events {
            while ti < timeline.len() && timeline[ti].0 <= msg.arrival_ns {
                self.apply_plan_event(
                    timeline[ti],
                    &crash_events,
                    &mut planned,
                    &mut sims,
                    &mut exec_list,
                    &mut route,
                    &mut ckpts,
                    &mut drafts,
                    &mut migrations,
                );
                ti += 1;
            }
            let node = &self.nodes[msg.node];
            let room = node.room;
            let shard = route.shard_for(room);
            let rerouted = shard != node.shard;
            // Let the routed shard's server catch up to the arrival
            // instant before judging the queue: frames it has already
            // started serving no longer occupy queue slots.
            Self::drain(
                &mut planned,
                &mut sims[shard],
                msg.arrival_ns,
                &mut exec_list,
                cfg,
                self.per_frame_ns,
            );
            let idx = planned.len();
            let sim = &mut sims[shard];
            let is_gap = node.stream.ticks[msg.seq].frame.is_none();
            let decision = if is_gap {
                Decision::Gap
            } else if route.is_down(shard) {
                // Every shard is down (a live survivor would have
                // adopted the room): nothing can admit the frame.
                Decision::Shed
            } else if sim.queue.len() >= cfg.queue_cap {
                Decision::Shed
            } else if sim.throttled && {
                throttle_ctr[msg.node] += 1;
                !throttle_ctr[msg.node].is_multiple_of(sim.adm.stride as u64)
            } {
                Decision::Downsampled
            } else {
                Decision::Queued
            };
            planned.push(PlannedDelivery {
                msg,
                room,
                shard,
                decision,
                depth_after: 0,
                rerouted,
            });
            if decision == Decision::Queued {
                sim.queue.push_back((idx, msg.arrival_ns));
            }
            let depth = sim.queue.len();
            planned[idx].depth_after = depth;
            sim.peak_depth = sim.peak_depth.max(depth);
            sim.depth_counts.record(depth as u64);
            if !route.is_down(shard) {
                if depth >= sim.adm.eff_high {
                    sim.throttled = true;
                } else if depth <= sim.adm.eff_low {
                    sim.throttled = false;
                }
                if !is_gap {
                    let degraded = matches!(decision, Decision::Shed | Decision::Downsampled);
                    sim.adm.observe(degraded, &cfg.resilience.error_budget);
                }
            }
        }
        while ti < timeline.len() {
            self.apply_plan_event(
                timeline[ti],
                &crash_events,
                &mut planned,
                &mut sims,
                &mut exec_list,
                &mut route,
                &mut ckpts,
                &mut drafts,
                &mut migrations,
            );
            ti += 1;
        }
        for sim in &mut sims {
            Self::drain(
                &mut planned,
                sim,
                i64::MAX,
                &mut exec_list,
                cfg,
                self.per_frame_ns,
            );
            debug_assert!(sim.queue.is_empty(), "final drain empties every queue");
        }
        PlanOutput {
            planned,
            sims,
            exec_list,
            crash_events,
            timeline,
            ckpts,
            drafts,
            migrations,
        }
    }

    /// Applies one failover-timeline event to the plan state: checkpoint
    /// boundaries snapshot every live shard's admission posture, crashes
    /// dispose of the queue per policy and migrate rooms, restarts
    /// recover admission state from the last pre-crash checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn apply_plan_event(
        &self,
        (t, ev): (i64, FailoverEvent),
        crash_events: &[CrashEvent],
        planned: &mut [PlannedDelivery],
        sims: &mut [ShardSim],
        exec_list: &mut Vec<usize>,
        route: &mut RouteTable,
        ckpts: &mut Vec<ShardCheckpoint>,
        drafts: &mut [CrashDraft],
        migrations: &mut u64,
    ) {
        let cfg = &self.cfg;
        match ev {
            FailoverEvent::Checkpoint => {
                for (shard, sim) in sims.iter_mut().enumerate() {
                    if route.is_down(shard) {
                        continue;
                    }
                    Self::drain(planned, sim, t, exec_list, cfg, self.per_frame_ns);
                    let sim = &*sim;
                    ckpts.push(ShardCheckpoint {
                        shard,
                        taken_ns: t,
                        throttled: sim.throttled,
                        eff_high: sim.adm.eff_high,
                        eff_low: sim.adm.eff_low,
                        stride: sim.adm.stride,
                        rooms: (0..cfg.rooms)
                            .filter(|&r| route.shard_for(r) == shard)
                            .map(|r| r as u32)
                            .collect(),
                        nodes: Vec::new(),
                    });
                }
            }
            FailoverEvent::Crash(k) => {
                let e = crash_events[k];
                let shard = e.shard;
                // Batches the server started before the crash complete
                // (batch-granular failure); only queued frames are at
                // the policy's mercy.
                Self::drain(
                    planned,
                    &mut sims[shard],
                    e.crash_ns,
                    exec_list,
                    cfg,
                    self.per_frame_ns,
                );
                let (migrated, rooms_at_crash) = route.crash(shard);
                *migrations += migrated;
                let draft = &mut drafts[k];
                draft.migrations_out = migrated;
                draft.rooms_at_crash = rooms_at_crash;
                let queue = std::mem::take(&mut sims[shard].queue);
                draft.queued_at_crash = queue.len() as u64;
                let policy = cfg
                    .crash
                    .as_ref()
                    .map(|c| c.policy)
                    .unwrap_or(CrashPolicy::Reroute);
                match policy {
                    CrashPolicy::Hold => {
                        draft.held = queue.len() as u64;
                        sims[shard].queue = queue;
                    }
                    CrashPolicy::Shed => {
                        draft.crash_lost = queue.len() as u64;
                        for (idx, _) in queue {
                            planned[idx].decision = Decision::CrashLost;
                        }
                    }
                    CrashPolicy::Reroute => {
                        for (idx, _) in queue {
                            let target = route.shard_for(planned[idx].room);
                            if route.is_down(target) || sims[target].queue.len() >= cfg.queue_cap {
                                // No surviving shard can absorb it.
                                planned[idx].decision = Decision::CrashLost;
                                draft.crash_lost += 1;
                            } else {
                                // The frame becomes the target's problem;
                                // it cannot start before the crash that
                                // moved it.
                                sims[target].queue.push_back((idx, e.crash_ns));
                                planned[idx].shard = target;
                                planned[idx].rerouted = true;
                                draft.rerouted += 1;
                            }
                        }
                    }
                }
                sims[shard].down = true;
                sims[shard].crashes += 1;
                sims[shard].throttled = false;
            }
            FailoverEvent::Restart(k) => {
                let e = crash_events[k];
                let shard = e.shard;
                let sim = &mut sims[shard];
                sim.down = false;
                sim.server_free_ns = sim.server_free_ns.max(e.restart_ns);
                // Recover the admission posture from the last checkpoint
                // that survived the crash; a shard that crashed before
                // any checkpoint boots with the configured knobs.
                match ckpts
                    .iter()
                    .rev()
                    .find(|c| c.shard == shard && c.taken_ns <= e.crash_ns)
                {
                    Some(ck) => {
                        sim.throttled = ck.throttled;
                        sim.adm.restore(ck);
                    }
                    None => {
                        sim.throttled = false;
                        sim.adm.reset();
                    }
                }
                *migrations += route.restart(shard);
            }
        }
    }

    /// Forms and schedules batches on one shard server up to virtual time
    /// `now`: while the server can start a batch no later than `now`, up
    /// to `batch_max` queued frames are dispatched as one unit. A downed
    /// shard serves nothing until its restart.
    fn drain(
        planned: &mut [PlannedDelivery],
        sim: &mut ShardSim,
        now: i64,
        exec_list: &mut Vec<usize>,
        cfg: &FleetConfig,
        per_frame_ns: u64,
    ) {
        if sim.down {
            return;
        }
        while let Some(&(_, ready_ns)) = sim.queue.front() {
            let start = sim.server_free_ns.max(ready_ns);
            if start > now {
                break;
            }
            let take = sim.queue.len().min(cfg.batch_max.max(1));
            let service_ns = cfg.batch_overhead_ns + per_frame_ns * take as u64;
            let completion_ns = start.saturating_add(service_ns as i64);
            for _ in 0..take {
                let (idx, _) = sim.queue.pop_front().expect("batch members queued");
                let exec_idx = exec_list.len();
                exec_list.push(idx);
                planned[idx].decision = Decision::Execute {
                    exec_idx,
                    completion_ns,
                };
            }
            sim.server_free_ns = completion_ns;
        }
    }

    /// Phase 2 (parallel): run every scheduled frame's attempt loop across
    /// the pool. Execution order never affects results — each attempt
    /// loop restores its CPU from the pristine base and is a pure
    /// function of `(frame, stall)`.
    fn execute(
        &self,
        planned: &[PlannedDelivery],
        exec_list: &[usize],
        pool: &mut CpuPool,
    ) -> Vec<AttemptOutcome> {
        let m = exec_list.len();
        if m == 0 {
            return Vec::new();
        }
        let mut out: Vec<Option<AttemptOutcome>> = (0..m).map(|_| None).collect();
        let (base, cpus) = pool.split_mut();
        let workers = cpus.len().max(1);
        let chunk = m.div_ceil(workers);
        let slots = pcount_runtime::SendPtr::new(out.as_mut_ptr());
        pcount_runtime::current().par_chunks_mut(cpus, 1, 0, |w, cpu_slot| {
            let cpu = &mut cpu_slot[0];
            let hi = ((w + 1) * chunk).min(m);
            for k in (w * chunk)..hi {
                let p = &planned[exec_list[k]];
                let tick = &self.nodes[p.msg.node].stream.ticks[p.msg.seq];
                let frame = tick.frame.as_deref().expect("executed ticks carry data");
                let outcome = self.supervised.attempt_frame(cpu, base, frame, tick.stall);
                // SAFETY: worker ranges are disjoint by construction, so
                // every slot has exactly one writer, and `out` is not
                // read until the pool group completes.
                unsafe { *slots.ptr().add(k) = Some(outcome) };
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every exec slot ran"))
            .collect()
    }

    /// Phase 3 (serial): replay outcomes in arrival order through the
    /// same failover timeline (checkpoint fills, crash rollbacks), node
    /// health windows, quarantine hysteresis and room fusion, and fold
    /// everything into the report.
    fn fold(&self, plan: PlanOutput, execs: Vec<AttemptOutcome>) -> FleetReport {
        let PlanOutput {
            planned,
            sims,
            exec_list: _,
            crash_events,
            timeline,
            mut ckpts,
            drafts,
            migrations,
        } = plan;
        let cfg = &self.cfg;
        let budget = &cfg.resilience.error_budget;
        let max_retries = cfg.resilience.retry.max_retries;
        let clock_hz = cfg.resilience.clock_hz.max(1);
        let mut states: Vec<NodeState> = (0..self.nodes.len())
            .map(|_| NodeState::new(cfg.resilience.voter_window))
            .collect();
        // Which nodes report into each room — the crash rollback scope.
        let mut room_nodes: Vec<Vec<usize>> = vec![Vec::new(); cfg.rooms];
        for node in &self.nodes {
            room_nodes[node.room].push(node.id);
        }
        let mut shard_latency: Vec<HistogramCounts> =
            (0..cfg.shards).map(|_| HistogramCounts::empty()).collect();
        let mut room_totals = vec![0usize; cfg.rooms];
        let mut building = 0usize;
        let mut changes: Vec<OccupancyChange> = Vec::new();
        let mut deliveries: Vec<Delivery> = Vec::with_capacity(planned.len());
        // Earliest fused completion each crashed shard managed after its
        // restart (the recovery-time metric).
        let mut recovery_min: Vec<Option<i64>> = vec![None; crash_events.len()];
        let mut ti = 0usize;
        let mut ci = 0usize;
        for (i, p) in planned.iter().enumerate() {
            while ti < timeline.len() && timeline[ti].0 <= p.msg.arrival_ns {
                Self::apply_fold_event(
                    timeline[ti],
                    cfg,
                    &crash_events,
                    &drafts,
                    &mut ckpts,
                    &mut ci,
                    &mut states,
                    &room_nodes,
                );
                ti += 1;
            }
            let ns = &mut states[p.msg.node];
            ns.deliveries += 1;
            if p.rerouted {
                ns.rerouted += 1;
            }
            let (status, prediction, latency_ns) = match p.decision {
                Decision::Gap => {
                    ns.gaps += 1;
                    (DeliveryStatus::Gap, None, None)
                }
                Decision::Shed => {
                    ns.shed += 1;
                    (DeliveryStatus::Shed, None, None)
                }
                Decision::Downsampled => {
                    ns.downsampled += 1;
                    (DeliveryStatus::Downsampled, None, None)
                }
                Decision::CrashLost => {
                    ns.crash_lost += 1;
                    (DeliveryStatus::CrashLost, None, None)
                }
                Decision::Queued => unreachable!("final drain resolves every queued frame"),
                Decision::Execute {
                    exec_idx,
                    completion_ns,
                } => {
                    let exec = &execs[exec_idx];
                    let retries = exec.failed_attempts.min(max_retries);
                    let backoff_ms = self.supervised.total_backoff_ms(i, retries);
                    ns.retries += retries as u64;
                    ns.cpu_resets += exec.failed_attempts as u64;
                    // Retry overhead is charged to the affected request
                    // alone (attributable tail latency) — it never shifts
                    // the planned schedule, which keeps the admission
                    // plan independent of execution.
                    let extra_ns = if exec.failed_attempts > 0 {
                        let recovery_ns = exec.wasted_cycles.saturating_mul(1_000_000_000)
                            / clock_hz
                            + backoff_ms * 1_000_000;
                        ns.recovery_counts.record(recovery_ns);
                        recovery_ns
                    } else {
                        0
                    };
                    let completion = completion_ns.saturating_add(extra_ns as i64);
                    let latency = completion.saturating_sub(p.msg.arrival_ns).max(0) as u64;
                    match &exec.run {
                        Some(run) => {
                            if exec.failed_attempts == 0 {
                                ns.ok += 1;
                                (DeliveryStatus::Ok, Some(run.prediction), Some(latency))
                            } else {
                                ns.recovered += 1;
                                (
                                    DeliveryStatus::Recovered {
                                        failed_attempts: exec.failed_attempts,
                                    },
                                    Some(run.prediction),
                                    Some(latency),
                                )
                            }
                        }
                        None => {
                            ns.fallback += 1;
                            (DeliveryStatus::Fallback, None, Some(latency))
                        }
                    }
                }
            };
            if let Some(lat) = latency_ns {
                shard_latency[p.shard].record(lat);
                pcount_telemetry::histogram(slo::FLEET_REQUEST_LATENCY).record(lat);
            }
            pcount_telemetry::histogram(slo::FLEET_QUEUE_DEPTH).record(p.depth_after as u64);
            // Fusion is judged against the quarantine state at delivery
            // time; the health update below only affects later frames.
            let was_quarantined = ns.quarantined;
            let mut fused = false;
            let new_contrib = match prediction {
                Some(pred) => {
                    let est = ns.voter.push(pred);
                    ns.last_good = Some(est);
                    if was_quarantined {
                        ns.quarantined_frames += 1;
                        ns.contrib
                    } else {
                        fused = true;
                        ns.fused += 1;
                        est
                    }
                }
                None => {
                    let est = ns.voter.push_missing().or(ns.last_good).unwrap_or(0);
                    if status.executed() && was_quarantined {
                        ns.quarantined_frames += 1;
                    }
                    if was_quarantined {
                        // Quarantined rooms hold their last trusted value.
                        ns.contrib
                    } else {
                        est
                    }
                }
            };
            if fused {
                if let Some(lat) = latency_ns {
                    let completion = p.msg.arrival_ns.saturating_add(lat as i64);
                    for (k, e) in crash_events.iter().enumerate() {
                        if e.shard == p.shard && completion >= e.restart_ns {
                            recovery_min[k] = Some(match recovery_min[k] {
                                Some(best) => best.min(completion),
                                None => completion,
                            });
                        }
                    }
                }
            }
            if new_contrib != ns.contrib {
                room_totals[p.room] = room_totals[p.room] - ns.contrib + new_contrib;
                building = building - ns.contrib + new_contrib;
                ns.contrib = new_contrib;
                changes.push(OccupancyChange {
                    seq: i as u64,
                    room: p.room as u32,
                    room_count: room_totals[p.room] as u32,
                    building: building as u32,
                });
            }
            // Health accounting: only node-caused outcomes move the
            // detector (shed/downsampled/crash-lost frames are the
            // service's doing).
            let health_sample = match status {
                DeliveryStatus::Gap => Some(1u8),
                DeliveryStatus::Fallback => Some(2u8),
                DeliveryStatus::Ok | DeliveryStatus::Recovered { .. } => Some(0u8),
                DeliveryStatus::Shed | DeliveryStatus::Downsampled | DeliveryStatus::CrashLost => {
                    None
                }
            };
            if let Some(sample) = health_sample {
                if ns.quarantined {
                    if sample == 0 {
                        ns.clean_streak += 1;
                        if ns.clean_streak >= cfg.readmit_after {
                            ns.quarantined = false;
                            ns.readmissions += 1;
                            ns.clean_streak = 0;
                            ns.window.clear();
                        }
                    } else {
                        ns.clean_streak = 0;
                    }
                } else {
                    ns.window.push_back(sample);
                    if ns.window.len() > cfg.health_window {
                        ns.window.pop_front();
                    }
                    if ns.window.len() == cfg.health_window {
                        let snapshot = ns.window_snapshot(budget);
                        if snapshot.error_budget_burn_milli >= cfg.quarantine_burn_milli {
                            ns.quarantined = true;
                            ns.trips += 1;
                            ns.clean_streak = 0;
                            ns.window.clear();
                        }
                    }
                }
            }
            deliveries.push(Delivery {
                msg: p.msg,
                room: p.room,
                shard: p.shard,
                status,
                queue_depth_after: p.depth_after,
                latency_ns,
                quarantined: was_quarantined,
                fused,
                rerouted: p.rerouted,
            });
        }
        while ti < timeline.len() {
            Self::apply_fold_event(
                timeline[ti],
                cfg,
                &crash_events,
                &drafts,
                &mut ckpts,
                &mut ci,
                &mut states,
                &room_nodes,
            );
            ti += 1;
        }
        // Finalise the recovery metric: first post-restart fused
        // completion, or the bare downtime when nothing arrived to prove
        // recovery.
        let mut recovery_counts = HistogramCounts::empty();
        let crash_reports: Vec<CrashReport> = crash_events
            .iter()
            .zip(drafts.iter())
            .enumerate()
            .map(|(k, (e, draft))| {
                let recovery_ns = match recovery_min[k] {
                    Some(completion) => completion.saturating_sub(e.crash_ns).max(0) as u64,
                    None => e.restart_ns.saturating_sub(e.crash_ns).max(0) as u64,
                };
                recovery_counts.record(recovery_ns);
                pcount_telemetry::histogram(slo::FLEET_RECOVERY_LATENCY).record(recovery_ns);
                CrashReport {
                    shard: e.shard,
                    crash_ns: e.crash_ns,
                    restart_ns: e.restart_ns,
                    queued_at_crash: draft.queued_at_crash,
                    crash_lost: draft.crash_lost,
                    rerouted: draft.rerouted,
                    held: draft.held,
                    migrations_out: draft.migrations_out,
                    recovery_ns,
                }
            })
            .collect();
        self.reports(
            states,
            sims,
            shard_latency,
            deliveries,
            changes,
            room_totals,
            crash_reports,
            recovery_counts,
            crash_events.len() as u64,
            migrations,
            ckpts.len() as u64,
        )
    }

    /// Applies one failover-timeline event to the fold state: checkpoint
    /// boundaries capture every in-scope node's fusion/health estimator
    /// into the plan's [`ShardCheckpoint`]s, crashes roll the affected
    /// nodes back to their last checkpointed estimator (hold-last-good
    /// keeps the emitted contribution), restarts need nothing — the
    /// recovered state already lives forward from the rollback.
    #[allow(clippy::too_many_arguments)]
    fn apply_fold_event(
        (t, ev): (i64, FailoverEvent),
        cfg: &FleetConfig,
        crash_events: &[CrashEvent],
        drafts: &[CrashDraft],
        ckpts: &mut [ShardCheckpoint],
        ci: &mut usize,
        states: &mut [NodeState],
        room_nodes: &[Vec<usize>],
    ) {
        match ev {
            FailoverEvent::Checkpoint => {
                while *ci < ckpts.len() && ckpts[*ci].taken_ns == t {
                    let ckpt = &mut ckpts[*ci];
                    for &room in &ckpt.rooms {
                        for &node in &room_nodes[room as usize] {
                            let ns = &states[node];
                            ckpt.nodes.push(crate::failover::NodeFusionCkpt {
                                node,
                                voter: ns.voter.clone(),
                                last_good: ns.last_good,
                                health: ns.window.clone(),
                                quarantined: ns.quarantined,
                                clean_streak: ns.clean_streak,
                            });
                        }
                    }
                    *ci += 1;
                }
            }
            FailoverEvent::Crash(k) => {
                let crash_ns = crash_events[k].crash_ns;
                for &room in &drafts[k].rooms_at_crash {
                    for &node in &room_nodes[room as usize] {
                        // The crashed shard's in-memory estimator since
                        // the last checkpoint is gone; whoever serves the
                        // room next resumes from the checkpoint store.
                        let recovered = ckpts[..*ci]
                            .iter()
                            .rev()
                            .filter(|c| c.taken_ns <= crash_ns)
                            .find_map(|c| c.node(node).cloned());
                        match recovered {
                            Some(ck) => states[node].restore(&ck),
                            None => states[node].reset_estimator(cfg.resilience.voter_window),
                        }
                    }
                }
            }
            FailoverEvent::Restart(_) => {}
        }
    }

    /// Assembles node/shard/fleet reports and mirrors the run's totals
    /// into the global `fleet/*` telemetry instruments.
    #[allow(clippy::too_many_arguments)]
    fn reports(
        &self,
        states: Vec<NodeState>,
        sims: Vec<ShardSim>,
        shard_latency: Vec<HistogramCounts>,
        deliveries: Vec<Delivery>,
        changes: Vec<OccupancyChange>,
        room_totals: Vec<usize>,
        crash_reports: Vec<CrashReport>,
        recovery_counts: HistogramCounts,
        crashes: u64,
        migrations: u64,
        checkpoints: u64,
    ) -> FleetReport {
        let cfg = &self.cfg;
        let budget = &cfg.resilience.error_budget;
        let node_reports: Vec<NodeReport> = self
            .nodes
            .iter()
            .zip(states.iter())
            .map(|(node, ns)| NodeReport {
                node: node.id,
                room: node.room,
                shard: node.shard,
                deliveries: ns.deliveries,
                gaps: ns.gaps,
                shed: ns.shed,
                downsampled: ns.downsampled,
                crash_lost: ns.crash_lost,
                rerouted: ns.rerouted,
                ok: ns.ok,
                recovered: ns.recovered,
                fallback: ns.fallback,
                fused: ns.fused,
                quarantined_frames: ns.quarantined_frames,
                quarantine_trips: ns.trips,
                readmissions: ns.readmissions,
                retries: ns.retries,
                cpu_resets: ns.cpu_resets,
                burn_milli: budget.burn_milli(ns.degraded(), ns.deliveries),
                slo: ns.run_snapshot(budget),
            })
            .collect();
        let shard_reports: Vec<ShardReport> = (0..cfg.shards)
            .map(|shard| {
                let members: Vec<&NodeState> = self
                    .nodes
                    .iter()
                    .zip(states.iter())
                    .filter(|(n, _)| n.shard == shard)
                    .map(|(_, s)| s)
                    .collect();
                // The shard SLO is the associative fold of its nodes'
                // snapshots; the burn pools every node's frames so a big
                // healthy node cannot mask a small sick one.
                let slo = members.iter().fold(SloSnapshot::default(), |acc, s| {
                    acc.merge(&s.run_snapshot(budget))
                });
                let burn_milli =
                    budget.burn_milli_total(members.iter().map(|s| (s.degraded(), s.deliveries)));
                let sim = &sims[shard];
                ShardReport {
                    shard,
                    nodes: members.len(),
                    queue_depth_peak: sim.peak_depth as u64,
                    queue_depth: sim.depth_counts.summarize(),
                    latency: shard_latency[shard].summarize(),
                    latency_counts: shard_latency[shard].clone(),
                    burn_milli,
                    slo,
                    crashes: sim.crashes,
                    adaptive_tightens: sim.adm.tightens,
                    adaptive_relaxes: sim.adm.relaxes,
                    high_watermark: sim.adm.eff_high,
                    downsample_stride: sim.adm.stride,
                }
            })
            .collect();
        let totals = ServeTotals {
            requests: states.iter().map(|s| s.deliveries - s.gaps).sum(),
            admitted: states.iter().map(|s| s.admitted()).sum(),
            shed: states.iter().map(|s| s.shed).sum(),
            downsampled: states.iter().map(|s| s.downsampled).sum(),
            gaps: states.iter().map(|s| s.gaps).sum(),
            fused: states.iter().map(|s| s.fused).sum(),
            quarantined_frames: states.iter().map(|s| s.quarantined_frames).sum(),
            quarantine_trips: states.iter().map(|s| s.trips).sum(),
            readmissions: states.iter().map(|s| s.readmissions).sum(),
            crash_lost: states.iter().map(|s| s.crash_lost).sum(),
            rerouted: states.iter().map(|s| s.rerouted).sum(),
            crashes,
            migrations,
            checkpoints,
        };
        for (name, value) in totals.as_counters() {
            if value > 0 {
                pcount_telemetry::counter(name).add(value);
            }
        }
        let queue_depth_peak = sims.iter().map(|s| s.peak_depth).max().unwrap_or(0) as u64;
        let worst_burn = shard_reports
            .iter()
            .map(|s| s.burn_milli)
            .max()
            .unwrap_or(0);
        pcount_telemetry::gauge(slo::FLEET_QUEUE_DEPTH_PEAK).set(queue_depth_peak as i64);
        pcount_telemetry::gauge(slo::FLEET_ERROR_BUDGET_BURN).set(worst_burn);
        let tightest_high = sims
            .iter()
            .map(|s| s.adm.eff_high)
            .min()
            .unwrap_or(cfg.high_watermark);
        let widest_stride = sims.iter().map(|s| s.adm.stride).max().unwrap_or(2);
        pcount_telemetry::gauge(slo::FLEET_ADAPTIVE_HIGH_WATERMARK).set(tightest_high as i64);
        pcount_telemetry::gauge(slo::FLEET_ADAPTIVE_DOWNSAMPLE_STRIDE).set(widest_stride as i64);
        let latency_counts = shard_latency
            .iter()
            .fold(HistogramCounts::empty(), |acc, c| acc.merge(c));
        let queue_depth_counts = sims.iter().fold(HistogramCounts::empty(), |acc, s| {
            acc.merge(&s.depth_counts)
        });
        let occupancy =
            OccupancyTrajectory::new(changes, room_totals.iter().map(|&r| r as u32).collect());
        FleetReport {
            nodes: cfg.nodes,
            rooms: cfg.rooms,
            shards: cfg.shards,
            per_frame_ns: self.per_frame_ns,
            totals,
            latency: latency_counts.summarize(),
            latency_counts,
            queue_depth: queue_depth_counts.summarize(),
            queue_depth_peak,
            worst_shard_burn_milli: worst_burn,
            crash_reports,
            recovery: recovery_counts.summarize(),
            recovery_counts,
            shard_reports,
            node_reports,
            deliveries,
            occupancy,
        }
    }
}
