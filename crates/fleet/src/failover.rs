//! Shard failover: deterministic crash/restart scheduling, room
//! migration, periodic shard checkpoints and the burn-driven adaptive
//! admission controller.
//!
//! Shards are the unit of failure that actually takes serving layers
//! down: PR 8's fleet only injected *node*-level chaos, so every fusion
//! shard was immortal. This module teaches the co-simulation that a
//! shard can die mid-run and come back:
//!
//! * [`CrashConfig`] plans [`CrashEvent`]s the way [`StormConfig`] plans
//!   fault storms — seeded from the fleet seed, placed in virtual time,
//!   so the whole failure drill is bit-reproducible at any pool width.
//! * [`CrashPolicy`] decides what happens to the frames queued on a
//!   crashing shard: re-route them to the rooms' failover shards, shed
//!   them (lost-in-crash), or hold them across the downtime.
//! * [`RouteTable`] migrates a crashed shard's rooms to surviving shards
//!   (the ROADMAP's cross-shard rebalancing) and returns them home on
//!   restart — all driven by the virtual-time schedule.
//! * [`ShardCheckpoint`] is the periodic snapshot a restarting shard
//!   recovers from: admission state (throttle flag, adaptive watermarks)
//!   restored in the plan phase, per-node fusion/health state restored
//!   in the fold phase, with hold-last-good fusion covering the gap
//!   between the last checkpoint and the crash.
//! * [`AdaptiveAdmission`] derives the effective watermarks and the
//!   downsample aggressiveness from a live windowed
//!   [`SloSnapshot`](pcount_telemetry::SloSnapshot) burn instead of the
//!   static knobs, with hysteresis against the error budget — an
//!   overloaded or degraded-by-failover shard trades latency for
//!   coverage on its own.
//!
//! [`StormConfig`]: crate::StormConfig

use std::collections::VecDeque;

use pcount_postproc::MajorityVoter;
use pcount_telemetry::slo;
use pcount_telemetry::{ErrorBudget, SloSnapshot};
use pcount_tensor::SplitMix64;

/// Salt of the per-shard crash-schedule seed (distinct from the node
/// stream and fault salts in `node.rs`).
const CRASH_SALT: u64 = 0xD6E8_FEB8_6659_FD93;

/// What a crashing shard does with the frames sitting in its bounded
/// queue at the instant of the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPolicy {
    /// Re-enqueue each queued frame onto its room's failover shard (in
    /// queue order, respecting the target's capacity — overflow is
    /// shed). The default: degraded service beats lost frames.
    Reroute,
    /// Drop the queue outright; every queued frame is counted
    /// lost-in-crash ([`DeliveryStatus::CrashLost`]).
    ///
    /// [`DeliveryStatus::CrashLost`]: crate::DeliveryStatus::CrashLost
    Shed,
    /// Keep the queue; the frames wait out the downtime and are served
    /// after the restart (latency absorbs the outage).
    Hold,
}

impl CrashPolicy {
    /// Stable lowercase name (JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            CrashPolicy::Reroute => "reroute",
            CrashPolicy::Shed => "shed",
            CrashPolicy::Hold => "hold",
        }
    }
}

/// A deterministic shard-crash fault class: every `shard_stride`-th
/// shard crashes once, inside a window placed as fractions of the run
/// span, with seeded per-shard jitter — the shard-level sibling of
/// [`StormConfig`](crate::StormConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashConfig {
    /// Every `shard_stride`-th shard crashes (`1` = every shard).
    pub shard_stride: usize,
    /// `(crash, restart)` instants as fractions of the run span.
    pub window: (f64, f64),
    /// Seeded per-shard jitter on both instants, as a fraction of the
    /// run span (keeps affected shards from failing in lock-step).
    pub jitter: f64,
    /// Disposal of the frames queued at the crash instant.
    pub policy: CrashPolicy,
}

impl CrashConfig {
    /// Whether `shard` is inside the crash schedule's blast radius.
    pub fn affects(&self, shard: usize) -> bool {
        shard.is_multiple_of(self.shard_stride.max(1))
    }
}

impl Default for CrashConfig {
    /// Every other shard crashes around 40% of the run and restarts
    /// around 65%, rerouting its queue.
    fn default() -> Self {
        Self {
            shard_stride: 2,
            window: (0.4, 0.65),
            jitter: 0.04,
            policy: CrashPolicy::Reroute,
        }
    }
}

/// One planned shard outage, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing shard.
    pub shard: usize,
    /// Virtual instant of the crash.
    pub crash_ns: i64,
    /// Virtual instant of the restart (strictly after the crash; may
    /// land past the last arrival, in which case the shard recovers
    /// with nothing left to serve).
    pub restart_ns: i64,
}

/// Expands a [`CrashConfig`] into the run's [`CrashEvent`]s. A pure
/// function of `(config, shard count, fleet seed, run span)`, so the
/// plan and fold phases and every pool width agree on the schedule.
pub fn plan_crashes(
    crash: &CrashConfig,
    shards: usize,
    seed: u64,
    start_ns: i64,
    end_ns: i64,
) -> Vec<CrashEvent> {
    let span = end_ns.saturating_sub(start_ns).max(0);
    if span == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for shard in 0..shards {
        if !crash.affects(shard) {
            continue;
        }
        let mut rng = SplitMix64::new(seed ^ (shard as u64 + 1).wrapping_mul(CRASH_SALT));
        let mut jitter = || -> i64 {
            let j = (span as f64 * crash.jitter) as i64;
            if j <= 0 {
                return 0;
            }
            (rng.next_u64() % (2 * j as u64 + 1)) as i64 - j
        };
        let crash_ns = (start_ns + (span as f64 * crash.window.0) as i64 + jitter()).max(start_ns);
        let restart_ns =
            (start_ns + (span as f64 * crash.window.1) as i64 + jitter()).max(crash_ns + 1);
        out.push(CrashEvent {
            shard,
            crash_ns,
            restart_ns,
        });
    }
    out.sort_by_key(|e| (e.crash_ns, e.shard));
    out
}

/// One entry of the failover timeline: checkpoints, crashes and
/// restarts interleaved with arrivals in virtual-time order. Both the
/// plan and the fold replay the same timeline, so admission and fusion
/// recovery agree on every instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailoverEvent {
    /// Periodic checkpoint boundary: snapshot every live shard.
    Checkpoint,
    /// Shard crash (index into the planned [`CrashEvent`] list).
    Crash(usize),
    /// Shard restart (index into the planned [`CrashEvent`] list).
    Restart(usize),
}

/// Builds the merged `(instant, event)` timeline: checkpoint boundaries
/// every `period_ns` from the first arrival, plus every crash/restart.
/// Ties are broken checkpoint-first (a checkpoint coinciding with a
/// crash still captures the pre-crash state), then crash before
/// restart.
pub(crate) fn failover_timeline(
    events: &[CrashEvent],
    start_ns: i64,
    end_ns: i64,
    period_ns: i64,
) -> Vec<(i64, FailoverEvent)> {
    if events.is_empty() {
        return Vec::new();
    }
    let horizon = events
        .iter()
        .map(|e| e.restart_ns)
        .max()
        .unwrap_or(end_ns)
        .max(end_ns);
    let mut timeline = Vec::new();
    if period_ns > 0 {
        let mut t = start_ns.saturating_add(period_ns);
        while t <= horizon {
            timeline.push((t, FailoverEvent::Checkpoint));
            t = t.saturating_add(period_ns);
        }
    }
    for (i, e) in events.iter().enumerate() {
        timeline.push((e.crash_ns, FailoverEvent::Crash(i)));
        timeline.push((e.restart_ns, FailoverEvent::Restart(i)));
    }
    // Checkpoint < Crash < Restart at equal instants.
    let rank = |ev: &FailoverEvent| match ev {
        FailoverEvent::Checkpoint => 0u8,
        FailoverEvent::Crash(_) => 1,
        FailoverEvent::Restart(_) => 2,
    };
    timeline.sort_by_key(|(t, ev)| (*t, rank(ev)));
    timeline
}

/// The live room→shard routing table. Rooms are homed on
/// `room % shards`; a crash deterministically migrates the crashed
/// shard's rooms to the next surviving shard, and a restart returns the
/// shard's homed rooms (and adopts any room stranded on a still-down
/// shard).
#[derive(Debug, Clone)]
pub(crate) struct RouteTable {
    route: Vec<usize>,
    down: Vec<bool>,
    shards: usize,
}

impl RouteTable {
    pub(crate) fn new(rooms: usize, shards: usize) -> Self {
        Self {
            route: (0..rooms).map(|r| r % shards).collect(),
            down: vec![false; shards],
            shards,
        }
    }

    /// The shard currently serving `room`.
    pub(crate) fn shard_for(&self, room: usize) -> usize {
        self.route[room]
    }

    /// Whether `shard` is currently down.
    pub(crate) fn is_down(&self, shard: usize) -> bool {
        self.down[shard]
    }

    /// The next surviving shard after `from`, scanning round-robin.
    fn next_live(&self, from: usize) -> Option<usize> {
        (1..=self.shards)
            .map(|k| (from + k) % self.shards)
            .find(|&s| !self.down[s])
    }

    /// Marks `shard` down and migrates every room it was serving to the
    /// next surviving shard. Returns `(migrated rooms, rooms that were
    /// routed to the shard at the crash)` — the latter is the fusion
    /// rollback scope.
    pub(crate) fn crash(&mut self, shard: usize) -> (u64, Vec<u32>) {
        self.down[shard] = true;
        let rooms_at_crash: Vec<u32> = self
            .route
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(r, _)| r as u32)
            .collect();
        let mut migrated = 0;
        if let Some(target_hint) = self.next_live(shard) {
            let _ = target_hint;
            for r in 0..self.route.len() {
                if self.route[r] == shard {
                    if let Some(t) = self.next_live(self.route[r]) {
                        self.route[r] = t;
                        migrated += 1;
                    }
                }
            }
        }
        (migrated, rooms_at_crash)
    }

    /// Marks `shard` live again, returns its homed rooms to it and
    /// adopts any room still routed to a down shard. Returns the number
    /// of migrations.
    pub(crate) fn restart(&mut self, shard: usize) -> u64 {
        self.down[shard] = false;
        let mut migrated = 0;
        for r in 0..self.route.len() {
            let home = r % self.shards;
            if (home == shard && self.route[r] != shard) || self.down[self.route[r]] {
                self.route[r] = shard;
                migrated += 1;
            }
        }
        migrated
    }
}

/// One node's fusion/health state inside a [`ShardCheckpoint`]: what a
/// restarted (or failover) shard knows about the node. The emitted room
/// contribution is deliberately *not* part of the checkpoint — the
/// estimate holds last-good through the gap; only the estimator rolls
/// back.
#[derive(Debug, Clone)]
pub struct NodeFusionCkpt {
    /// Fleet-wide node id.
    pub node: usize,
    /// The node's majority voter at the checkpoint.
    pub voter: MajorityVoter,
    /// Last good estimate at the checkpoint.
    pub last_good: Option<usize>,
    /// Sliding health window at the checkpoint.
    pub health: VecDeque<u8>,
    /// Quarantine flag at the checkpoint.
    pub quarantined: bool,
    /// Readmission clean streak at the checkpoint.
    pub clean_streak: u32,
}

/// A periodic snapshot of one shard's recoverable state, taken every
/// [`FleetConfig::checkpoint_period_ms`] of virtual time while the
/// shard is live. On restart the shard recovers its admission state
/// (throttle flag, adaptive watermarks/stride) from the last checkpoint
/// before the crash; on crash the fold rolls the shard's nodes' fusion
/// and health state back to the same checkpoint (frames fused after it
/// are lost from the estimator's memory — hold-last-good covers the
/// gap).
///
/// [`FleetConfig::checkpoint_period_ms`]: crate::FleetConfig::checkpoint_period_ms
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// The shard this snapshot belongs to.
    pub shard: usize,
    /// Virtual instant the snapshot was taken.
    pub taken_ns: i64,
    /// Backpressure throttle flag at the snapshot.
    pub throttled: bool,
    /// Effective high watermark at the snapshot (adaptive admission).
    pub eff_high: usize,
    /// Effective low watermark at the snapshot (adaptive admission).
    pub eff_low: usize,
    /// Downsample stride at the snapshot (keep 1 frame in `stride`).
    pub stride: u32,
    /// Rooms routed to the shard at the snapshot (the fusion scope).
    pub rooms: Vec<u32>,
    /// Per-node fusion/health state, filled by the fold phase at the
    /// same boundary the plan recorded.
    pub nodes: Vec<NodeFusionCkpt>,
}

impl ShardCheckpoint {
    /// The checkpointed fusion state of `node`, if the node was in the
    /// shard's scope when the snapshot was taken.
    pub fn node(&self, node: usize) -> Option<&NodeFusionCkpt> {
        self.nodes.iter().find(|n| n.node == node)
    }
}

/// Burn-driven adaptive admission for a [`FleetConfig`]: instead of the
/// static `high_watermark`/`low_watermark`/every-other-frame knobs, the
/// shard derives its effective watermarks and downsample stride from
/// the error-budget burn of a live windowed [`SloSnapshot`] over its
/// own admission outcomes.
///
/// [`FleetConfig`]: crate::FleetConfig
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Offered frames per evaluation window (per shard).
    pub window: usize,
    /// Burn (milli-units) at or above which the shard tightens:
    /// watermarks step down, the downsample stride steps up.
    pub tighten_burn_milli: i64,
    /// Burn (milli-units) at or below which the shard relaxes back
    /// toward the configured knobs. Must be strictly below
    /// [`tighten_burn_milli`](Self::tighten_burn_milli) — that gap is
    /// the hysteresis that stops flapping.
    pub relax_burn_milli: i64,
    /// Floor of the effective high watermark (never tightened below).
    pub min_high_watermark: usize,
    /// Watermark change per adjustment step.
    pub watermark_step: usize,
    /// Ceiling of the downsample stride (keep 1 frame in `stride`; the
    /// static behaviour is stride 2 = every other frame).
    pub max_downsample_stride: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window: 32,
            tighten_burn_milli: 1_000,
            relax_burn_milli: 250,
            min_high_watermark: 4,
            watermark_step: 8,
            max_downsample_stride: 4,
        }
    }
}

/// The per-shard adaptive admission controller (plan-phase state).
///
/// Every offered frame reports whether admission degraded it (shed or
/// downsampled); once the window fills, its [`SloSnapshot`] burn is
/// judged against the hysteresis band and the effective watermarks and
/// stride move one step. The controller state is part of the shard's
/// [`ShardCheckpoint`], so a restarted shard resumes with the admission
/// posture it had at the last checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct AdaptiveAdmission {
    cfg: Option<AdaptiveConfig>,
    base_high: usize,
    base_low: usize,
    /// Effective high watermark (== `base_high` when static).
    pub(crate) eff_high: usize,
    /// Effective low watermark (== `base_low` when static).
    pub(crate) eff_low: usize,
    /// Keep 1 frame in `stride` while throttled (2 = static behaviour).
    pub(crate) stride: u32,
    window: VecDeque<bool>,
    /// Times the controller tightened (watermarks down / stride up).
    pub(crate) tightens: u64,
    /// Times the controller relaxed back toward the configured knobs.
    pub(crate) relaxes: u64,
}

impl AdaptiveAdmission {
    pub(crate) fn new(cfg: Option<AdaptiveConfig>, high: usize, low: usize) -> Self {
        Self {
            cfg,
            base_high: high,
            base_low: low,
            eff_high: high,
            eff_low: low,
            stride: 2,
            window: VecDeque::new(),
            tightens: 0,
            relaxes: 0,
        }
    }

    /// Resets to the configured (un-tightened) posture — the state a
    /// shard boots with when it crashed before any checkpoint existed.
    pub(crate) fn reset(&mut self) {
        self.eff_high = self.base_high;
        self.eff_low = self.base_low;
        self.stride = 2;
        self.window.clear();
    }

    /// Restores the posture recorded in a [`ShardCheckpoint`]. The
    /// evaluation window restarts empty — pre-crash samples described a
    /// queue that no longer exists.
    pub(crate) fn restore(&mut self, ckpt: &ShardCheckpoint) {
        self.eff_high = ckpt.eff_high;
        self.eff_low = ckpt.eff_low;
        self.stride = ckpt.stride;
        self.window.clear();
    }

    /// Derives `eff_low` from `eff_high`, preserving the configured
    /// band's proportions while keeping `low < high`.
    fn scaled_low(&self) -> usize {
        if self.base_high == 0 {
            return 0;
        }
        (self.eff_high * self.base_low / self.base_high).min(self.eff_high.saturating_sub(1))
    }

    /// Feeds one admission outcome (`degraded` = shed or downsampled)
    /// and moves the knobs when the windowed burn crosses the
    /// hysteresis band.
    pub(crate) fn observe(&mut self, degraded: bool, budget: &ErrorBudget) {
        let Some(cfg) = self.cfg.clone() else {
            return;
        };
        self.window.push_back(degraded);
        if self.window.len() > cfg.window {
            self.window.pop_front();
        }
        if self.window.len() < cfg.window {
            return;
        }
        let bad = self.window.iter().filter(|&&d| d).count() as u64;
        let total = self.window.len() as u64;
        // The decision reads burn off the same SLO surface the reports
        // export — a real windowed snapshot, not a private heuristic.
        let snapshot = SloSnapshot {
            counters: vec![(slo::FLEET_SHED, bad)],
            error_budget_burn_milli: budget.burn_milli(bad, total),
            ..SloSnapshot::default()
        };
        let burn = snapshot.error_budget_burn_milli;
        if burn >= cfg.tighten_burn_milli {
            let can_tighten =
                self.eff_high > cfg.min_high_watermark || self.stride < cfg.max_downsample_stride;
            if can_tighten {
                self.eff_high = self
                    .eff_high
                    .saturating_sub(cfg.watermark_step)
                    .max(cfg.min_high_watermark);
                self.eff_low = self.scaled_low();
                self.stride = (self.stride + 1).min(cfg.max_downsample_stride);
                self.tightens += 1;
                self.window.clear();
            }
        } else if burn <= cfg.relax_burn_milli {
            let can_relax = self.eff_high < self.base_high || self.stride > 2;
            if can_relax {
                self.eff_high = (self.eff_high + cfg.watermark_step).min(self.base_high);
                self.eff_low = if self.eff_high == self.base_high {
                    self.base_low
                } else {
                    self.scaled_low()
                };
                self.stride = self.stride.saturating_sub(1).max(2);
                self.relaxes += 1;
                self.window.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plan_is_seeded_and_respects_the_stride() {
        let cfg = CrashConfig {
            shard_stride: 2,
            window: (0.3, 0.6),
            jitter: 0.05,
            policy: CrashPolicy::Reroute,
        };
        let a = plan_crashes(&cfg, 4, 7, 0, 1_000_000);
        let b = plan_crashes(&cfg, 4, 7, 0, 1_000_000);
        assert_eq!(a, b, "same seed reproduces the schedule");
        let mut shards: Vec<_> = a.iter().map(|e| e.shard).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 2], "stride 2 hits shards 0 and 2");
        assert!(
            a.windows(2).all(|w| w[0].crash_ns <= w[1].crash_ns),
            "events come out in crash order"
        );
        for e in &a {
            assert!(e.crash_ns < e.restart_ns, "restart strictly after crash");
            assert!(e.crash_ns >= 0);
        }
        let c = plan_crashes(&cfg, 4, 8, 0, 1_000_000);
        assert_ne!(a, c, "a different seed moves the jittered instants");
    }

    #[test]
    fn zero_span_plans_no_crashes() {
        assert!(plan_crashes(&CrashConfig::default(), 4, 7, 5, 5).is_empty());
    }

    #[test]
    fn timeline_orders_checkpoints_before_crashes_at_a_tie() {
        let events = vec![CrashEvent {
            shard: 0,
            crash_ns: 200,
            restart_ns: 400,
        }];
        let tl = failover_timeline(&events, 0, 500, 100);
        let at_200: Vec<_> = tl.iter().filter(|(t, _)| *t == 200).collect();
        assert_eq!(at_200.len(), 2);
        assert_eq!(*at_200[0], (200, FailoverEvent::Checkpoint));
        assert_eq!(*at_200[1], (200, FailoverEvent::Crash(0)));
        // Boundaries extend to the restart horizon even past end_ns.
        let tl2 = failover_timeline(&events, 0, 250, 100);
        assert!(tl2.contains(&(400, FailoverEvent::Restart(0))));
        assert!(tl2
            .iter()
            .any(|(t, e)| *t == 400 && *e == FailoverEvent::Checkpoint));
    }

    #[test]
    fn routes_migrate_on_crash_and_return_on_restart() {
        let mut rt = RouteTable::new(6, 3);
        assert_eq!(rt.shard_for(4), 1);
        let (migrated, rooms) = rt.crash(1);
        assert_eq!(migrated, 2, "rooms 1 and 4 leave shard 1");
        assert_eq!(rooms, vec![1, 4]);
        assert_eq!(rt.shard_for(1), 2);
        assert_eq!(rt.shard_for(4), 2);
        assert!(rt.is_down(1));
        // A second crash strands nothing: rooms hop to the last survivor.
        let (m2, _) = rt.crash(2);
        assert_eq!(m2, 4, "shard 2's own rooms plus the migrants move");
        assert_eq!(rt.shard_for(1), 0);
        // Restart returns homed rooms and adopts nothing extra.
        assert_eq!(rt.restart(1), 2);
        assert_eq!(rt.shard_for(1), 1);
        assert_eq!(rt.shard_for(4), 1);
        assert_eq!(rt.restart(2), 2);
        assert_eq!(rt.shard_for(2), 2);
    }

    #[test]
    fn all_shards_down_strands_rooms_until_a_restart() {
        let mut rt = RouteTable::new(2, 2);
        rt.crash(0);
        let (m, _) = rt.crash(1);
        assert_eq!(m, 0, "no survivor to migrate to");
        assert!(rt.is_down(rt.shard_for(1)), "room stranded on a down shard");
        // First restart adopts every stranded room.
        assert_eq!(rt.restart(0), 2);
        assert_eq!(rt.shard_for(1), 0);
        // The other shard's restart takes its homed room back.
        assert_eq!(rt.restart(1), 1);
        assert_eq!(rt.shard_for(1), 1);
    }

    #[test]
    fn adaptive_tightens_under_burn_and_relaxes_with_hysteresis() {
        let budget = ErrorBudget {
            allowed_bad_per_mille: 50,
        };
        let cfg = AdaptiveConfig {
            window: 8,
            tighten_burn_milli: 1_000,
            relax_burn_milli: 250,
            min_high_watermark: 4,
            watermark_step: 8,
            max_downsample_stride: 4,
        };
        let mut adm = AdaptiveAdmission::new(Some(cfg), 48, 16);
        // A clean window moves nothing (already at the configured knobs).
        for _ in 0..8 {
            adm.observe(false, &budget);
        }
        assert_eq!((adm.eff_high, adm.stride), (48, 2));
        assert_eq!(adm.relaxes, 0, "no-op relax does not count");
        // One degraded frame out of 8 already blows a 5% budget.
        for i in 0..8 {
            adm.observe(i == 0, &budget);
        }
        assert_eq!(adm.tightens, 1);
        assert_eq!(adm.eff_high, 40);
        assert!(adm.eff_low < adm.eff_high);
        assert_eq!(adm.stride, 3);
        // Sustained burn keeps tightening down to the floors.
        for _ in 0..10 {
            for i in 0..8 {
                adm.observe(i < 2, &budget);
            }
        }
        assert_eq!(adm.eff_high, 4);
        assert_eq!(adm.stride, 4);
        let tightens = adm.tightens;
        for i in 0..8 {
            adm.observe(i < 2, &budget);
        }
        assert_eq!(adm.tightens, tightens, "floored controller stops counting");
        // Clean windows relax one step at a time, back to the base.
        for _ in 0..20 {
            for _ in 0..8 {
                adm.observe(false, &budget);
            }
        }
        assert_eq!((adm.eff_high, adm.eff_low, adm.stride), (48, 16, 2));
        assert!(adm.relaxes >= 6);
    }

    #[test]
    fn adaptive_checkpoint_restore_recovers_the_posture() {
        let budget = ErrorBudget {
            allowed_bad_per_mille: 50,
        };
        let mut adm = AdaptiveAdmission::new(Some(AdaptiveConfig::default()), 48, 16);
        for _ in 0..64 {
            adm.observe(true, &budget);
        }
        assert!(adm.eff_high < 48);
        let ckpt = ShardCheckpoint {
            shard: 0,
            taken_ns: 0,
            throttled: true,
            eff_high: adm.eff_high,
            eff_low: adm.eff_low,
            stride: adm.stride,
            rooms: vec![],
            nodes: vec![],
        };
        let mut fresh = AdaptiveAdmission::new(Some(AdaptiveConfig::default()), 48, 16);
        fresh.restore(&ckpt);
        assert_eq!(
            (fresh.eff_high, fresh.eff_low, fresh.stride),
            (adm.eff_high, adm.eff_low, adm.stride)
        );
        fresh.reset();
        assert_eq!((fresh.eff_high, fresh.eff_low, fresh.stride), (48, 16, 2));
    }

    #[test]
    fn static_controller_never_moves() {
        let budget = ErrorBudget::default();
        let mut adm = AdaptiveAdmission::new(None, 48, 16);
        for _ in 0..256 {
            adm.observe(true, &budget);
        }
        assert_eq!((adm.eff_high, adm.eff_low, adm.stride), (48, 16, 2));
        assert_eq!(adm.tightens + adm.relaxes, 0);
    }
}
