//! Deterministic multi-node serving layer (`pcount-fleet`).
//!
//! The paper's end goal is continuous people-flow monitoring from many
//! deployed MAUPITI sensor nodes. This crate closes that loop as a
//! deterministic actor/message-passing co-simulation:
//!
//! * **Node actors** ([`SensorNode`]): each node owns its slice of a
//!   recorded session ([`IrDataset::session_stream_window`]), a per-node
//!   seeded fault plan (reproducible fleet-wide chaos from one fleet
//!   seed), and a clock with seed-derived skew on top of injected jitter.
//! * **Sharded fusion service** ([`FleetService`]): rooms map wholly to
//!   shards; each shard's front-end applies admission control over a
//!   bounded queue, backpressure with watermark hysteresis (throttled
//!   nodes downsample at the source), and load shedding that degrades to
//!   hold-last-good per room instead of dropping the room. Admitted
//!   frames batch onto [`CpuPool`](pcount_kernels::CpuPool) workers via
//!   `pcount-runtime`, each frame supervised by the
//!   [`ResilientDeployment`](pcount_resilience::ResilientDeployment)
//!   retry loop.
//! * **SLO governance**: every node's health is judged from windowed
//!   [`SloSnapshot`](pcount_telemetry::SloSnapshot)s against the error
//!   budget; sick nodes are quarantined (their frames still execute but
//!   never reach fusion) and readmitted only after a clean streak. Shard
//!   reports fold node snapshots with `SloSnapshot::merge` and pool
//!   error-budget burn with `ErrorBudget::burn_milli_total`.
//!
//! * **Shard failover** ([`CrashConfig`], [`ShardCheckpoint`]): shards
//!   themselves can die on a seeded, virtual-time crash schedule. A
//!   crashing shard's queue is disposed of per [`CrashPolicy`]
//!   (re-routed to surviving shards, shed as lost-in-crash, or held
//!   across the downtime), its rooms deterministically migrate to
//!   failover shards and return home on restart, and recovery resumes
//!   from the last periodic checkpoint — fusion state since the
//!   checkpoint is lost and hold-last-good covers the gap.
//! * **Adaptive admission** ([`AdaptiveConfig`]): instead of the static
//!   watermarks, each shard can derive its effective
//!   watermarks/downsample stride from the error-budget burn of a live
//!   windowed snapshot of its own admission outcomes, with hysteresis
//!   against flapping.
//!
//! Scheduling is virtual-time: a serial event plan decides every
//! admission/batching/failover outcome against a nominal service cost,
//! execution fans out as pure per-frame functions, and a serial fold
//! replays outcomes in arrival order — so the whole fleet run (including
//! the [`OccupancyTrajectory`] digest) is bit-reproducible at any pool
//! width, crashes included. `crates/bench/benches/serve.rs` drives load
//! ramps, fault storms and crash storms over this crate and writes
//! `BENCH_serve.json`.
//!
//! [`IrDataset::session_stream_window`]: pcount_dataset::IrDataset::session_stream_window

mod failover;
mod msg;
mod node;
mod report;
mod service;

pub use failover::{
    plan_crashes, AdaptiveConfig, CrashConfig, CrashEvent, CrashPolicy, NodeFusionCkpt,
    ShardCheckpoint,
};
pub use msg::{Delivery, DeliveryStatus, FrameMsg};
pub use node::SensorNode;
pub use report::{
    CrashReport, FleetReport, NodeReport, OccupancyChange, OccupancyTrajectory, ServeTotals,
    ShardReport,
};
pub use service::{ConfigError, FleetConfig, FleetService, StormConfig};
