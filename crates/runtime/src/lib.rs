//! Persistent worker-pool runtime for the MAUPITI stack.
//!
//! Before this crate existed, every parallel surface of the workspace —
//! the blocked GEMM's callers, the per-fold and per-λ training loops in
//! `pcount-core`, the batch inference pool in `pcount-kernels` and the
//! benches — spawned short-lived `std::thread::scope` workers per call.
//! That cost a thread create/join round-trip on every hot-path invocation
//! and made nested fan-outs multiply their worker budgets. This crate
//! replaces all of them with one **persistent, lazily-initialized pool**:
//!
//! * workers are spawned once (on first use) and **park** on a condvar
//!   whenever the queue is empty — the steady state performs no thread
//!   creation at all;
//! * work is submitted as *groups* of independent index jobs `f(0..n)`
//!   and scheduled as **chunked index ranges** claimed from an atomic
//!   counter, so any number of workers can drain one group without
//!   pre-partitioning;
//! * the submitting thread always participates in its own group and then
//!   blocks until stragglers finish, which makes [`PoolRef::run`]
//!   **scoped**: the closure may borrow stack data even though the
//!   workers are `'static` threads;
//! * nested submissions (a GEMM inside a fold job inside a λ sweep) go
//!   to the **same** pool — the single worker budget is shared across
//!   every level instead of multiplying, and a nested submitter simply
//!   drains its own group inline when every worker is busy, so nesting
//!   can never deadlock or oversubscribe.
//!
//! The pool size comes from the `POOL_THREADS` environment variable
//! (`0` or unset = auto: the host's available parallelism). **Results
//! never depend on it**: every caller in the workspace submits jobs that
//! are independent per index and reduces their outputs in canonical index
//! order, so any pool size — and any per-call [`limit`] — produces
//! bit-identical results. `POOL_THREADS` is a pure performance knob.
//!
//! # Telemetry
//!
//! When `pcount-telemetry` is enabled the pool records, per drained
//! group: a `pool/task` span on every participating worker, the group's
//! queue wait (submission → first claim) and drain latency (submission →
//! completion) into the `pool/queue_wait_ns` / `pool/group_drain_ns`
//! histograms, and per-slot task/busy totals readable through
//! [`PoolRef::utilization`]. While telemetry is disabled all of this
//! costs one relaxed atomic load per group — results are bit-identical
//! either way.
//!
//! [`limit`]: PoolRef::run_limited
//!
//! # Example
//!
//! ```
//! let squares = pcount_runtime::current().map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

pub use pcount_telemetry::PoolUtilization;

/// Type-erased view of one submitted job closure.
///
/// The pointee lives on the submitter's stack; [`PoolRef::run_limited`]
/// guarantees it outlives every use by blocking until the group's last
/// index completes (even when a job panics).
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the submitter keeps it alive for the group's whole lifetime.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// One submitted batch of index jobs, drained cooperatively by the
/// submitter and any parked workers.
struct Group {
    job: Job,
    /// Total number of index jobs.
    n: usize,
    /// Indices claimed per queue pop.
    chunk: usize,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Worker slots still available (concurrency limit minus active
    /// participants). The submitter holds one slot for the group's whole
    /// lifetime.
    slots: AtomicUsize,
    /// Completed index count + first panic payload.
    state: Mutex<GroupState>,
    /// Signalled when `state.done` reaches `n`.
    done_cv: Condvar,
    /// Telemetry submission timestamp (`now_ns` at enqueue), or `0` when
    /// telemetry was disabled at submission — the sentinel that turns all
    /// per-group recording off.
    submitted_ns: u64,
    /// Set by whichever thread claims the group's first chunk; gates the
    /// one-shot queue-wait measurement.
    first_claim: AtomicBool,
}

#[derive(Default)]
struct GroupState {
    done: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Group {
    /// Claims and runs chunks until the index counter is exhausted,
    /// returning how many index jobs this thread executed.
    /// Panics inside jobs are caught, recorded and re-thrown by the
    /// submitter after the group completes.
    fn work(&self) -> usize {
        let mut executed = 0;
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n {
                return executed;
            }
            if self.submitted_ns != 0 && !self.first_claim.swap(true, Ordering::Relaxed) {
                pcount_telemetry::histogram("pool/queue_wait_ns")
                    .record(pcount_telemetry::now_ns().saturating_sub(self.submitted_ns));
            }
            let end = (start + self.chunk).min(self.n);
            executed += end - start;
            // SAFETY: the submitter keeps the closure alive until
            // `state.done == n`, and `done` only counts claimed chunks
            // after they ran.
            let job = unsafe { &*self.job.0 };
            let result = catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    job(i);
                }
            }));
            let mut state = self.state.lock().expect("group state lock");
            state.done += end - start;
            if let Err(payload) = result {
                state.panic.get_or_insert(payload);
            }
            if state.done == self.n {
                self.done_cv.notify_all();
            }
        }
    }

    /// True while unclaimed indices remain.
    fn has_remaining(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.n
    }

    /// Tries to reserve one concurrency slot.
    fn try_take_slot(&self) -> bool {
        self.slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
            .is_ok()
    }

    fn release_slot(&self) {
        self.slots.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocks until every index job has completed, then returns the first
    /// panic payload, if any.
    fn wait_done(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().expect("group state lock");
        while state.done < self.n {
            state = self.done_cv.wait(state).expect("group state lock");
        }
        state.panic.take()
    }
}

/// Per-slot execution totals. 64-byte aligned so two slots never share a
/// cache line when workers update their own entries concurrently.
#[repr(align(64))]
#[derive(Default)]
struct SlotStats {
    /// Index jobs executed by this slot.
    tasks: AtomicU64,
    /// Nanoseconds this slot spent inside `Group::work`.
    busy_ns: AtomicU64,
}

/// State shared between the pool owner, its workers and every
/// [`PoolRef`].
struct Shared {
    /// Pending groups in submission order. Groups stay queued while they
    /// have unclaimed indices; both workers and submitters prune
    /// exhausted entries.
    queue: Mutex<VecDeque<Arc<Group>>>,
    /// Parked workers wait here; signalled on submission, slot release
    /// and shutdown.
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Total usable parallelism: spawned workers + the submitting thread.
    width: usize,
    /// Per-slot telemetry totals: slot 0 aggregates submitting threads,
    /// slots `1..width` are the spawned workers. Only written while
    /// telemetry is enabled.
    stats: Vec<SlotStats>,
    /// Groups drained through this pool (telemetry-gated, like `stats`).
    groups: AtomicU64,
}

impl Shared {
    /// The main loop of one pool worker: pick a group with remaining
    /// work and a free slot, drain chunks, park when idle. `slot` is the
    /// worker's index into `stats` (`1..width`).
    fn worker_loop(self: &Arc<Self>, slot: usize) {
        CURRENT.with(|c| {
            *c.borrow_mut() = Some(PoolRef {
                shared: Arc::clone(self),
            });
        });
        let mut queue = self.queue.lock().expect("pool queue lock");
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            queue.retain(|g| g.has_remaining());
            let picked = queue.iter().find(|g| g.try_take_slot()).map(Arc::clone);
            match picked {
                Some(group) => {
                    drop(queue);
                    self.work_instrumented(&group, slot);
                    group.release_slot();
                    // A freed slot may unblock a sibling waiting on a
                    // limit-saturated group.
                    self.work_cv.notify_all();
                    queue = self.queue.lock().expect("pool queue lock");
                }
                None => {
                    queue = self.work_cv.wait(queue).expect("pool queue lock");
                }
            }
        }
    }

    /// Drains `group` chunks on behalf of `slot`, recording a
    /// `pool/task` span and the slot's task/busy totals when telemetry
    /// is enabled (one relaxed atomic load otherwise).
    fn work_instrumented(self: &Arc<Self>, group: &Group, slot: usize) {
        if !pcount_telemetry::enabled() {
            group.work();
            return;
        }
        let _span = pcount_telemetry::span("pool/task");
        let start = pcount_telemetry::now_ns();
        let executed = group.work();
        let stats = &self.stats[slot];
        stats
            .busy_ns
            .fetch_add(pcount_telemetry::now_ns() - start, Ordering::Relaxed);
        stats.tasks.fetch_add(executed as u64, Ordering::Relaxed);
    }
}

/// An owned worker pool. Dropping it parks no one: workers are woken,
/// told to shut down and joined.
///
/// The process-wide pool behind [`current`]/[`global`] is created once
/// from `POOL_THREADS` and lives for the program; explicitly constructed
/// pools exist so tests and benches can pin an exact worker count (see
/// [`install`]).
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("width", &self.shared.width)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `width` total parallelism: `width - 1` worker
    /// threads are spawned (the submitting thread is the remaining
    /// participant). `width == 0` means auto (available parallelism);
    /// `width == 1` spawns nothing and every submission runs inline.
    pub fn new(width: usize) -> Self {
        let width = if width == 0 {
            host_parallelism()
        } else {
            width
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            width,
            stats: (0..width).map(|_| SlotStats::default()).collect(),
            groups: AtomicU64::new(0),
        });
        let workers = (1..width)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pcount-pool-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// A cloneable, submittable handle to this pool.
    pub fn handle(&self) -> PoolRef {
        PoolRef {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            // The store must happen under the queue mutex: a worker
            // checks `shutdown` while holding the lock and then waits on
            // the condvar, so a store + notify landing inside that
            // check-to-wait window (without the lock) would be a lost
            // wakeup and the join below would hang forever.
            let _queue = self.shared.queue.lock().expect("pool queue lock");
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A handle for submitting work to a [`Pool`]. Obtained from
/// [`current`], [`global`] or [`Pool::handle`].
#[derive(Clone)]
pub struct PoolRef {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for PoolRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRef")
            .field("width", &self.shared.width)
            .finish()
    }
}

impl PoolRef {
    /// Total usable parallelism of the pool (spawned workers plus the
    /// submitting thread).
    pub fn width(&self) -> usize {
        self.shared.width
    }

    /// Runs `f(0..jobs)` across the pool and blocks until every index has
    /// completed. Panics in jobs are re-thrown here after the group
    /// drains, so the borrowed closure never outlives its captures.
    pub fn run<F: Fn(usize) + Sync>(&self, jobs: usize, f: F) {
        self.run_chunked(jobs, 1, 0, f);
    }

    /// [`PoolRef::run`] with at most `limit` threads working the group
    /// concurrently (`0` = no extra limit; the submitter always counts as
    /// one participant). Results must not depend on `limit`: jobs are
    /// independent per index, so this is a pure scheduling knob.
    pub fn run_limited<F: Fn(usize) + Sync>(&self, jobs: usize, limit: usize, f: F) {
        self.run_chunked(jobs, 1, limit, f);
    }

    /// Fully general submission: `f(0..jobs)` with indices claimed
    /// `chunk` at a time by at most `limit` concurrent threads.
    pub fn run_chunked<F: Fn(usize) + Sync>(&self, jobs: usize, chunk: usize, limit: usize, f: F) {
        if jobs == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let limit = if limit == 0 { self.width() } else { limit };
        if jobs == 1 || limit <= 1 || self.width() <= 1 {
            if pcount_telemetry::enabled() {
                let start = pcount_telemetry::now_ns();
                for i in 0..jobs {
                    f(i);
                }
                let elapsed = pcount_telemetry::now_ns() - start;
                let stats = &self.shared.stats[0];
                stats.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
                stats.tasks.fetch_add(jobs as u64, Ordering::Relaxed);
                self.shared.groups.fetch_add(1, Ordering::Relaxed);
                pcount_telemetry::histogram("pool/group_drain_ns").record(elapsed);
            } else {
                for i in 0..jobs {
                    f(i);
                }
            }
            return;
        }
        let submitted_ns = if pcount_telemetry::enabled() {
            pcount_telemetry::now_ns().max(1)
        } else {
            0
        };
        let erased: *const (dyn Fn(usize) + Sync) = &f;
        // SAFETY (lifetime erasure): the raw pointer is only dereferenced
        // by `Group::work`, and this function does not return before
        // `wait_done` observed every claimed index as completed, so the
        // `'static` pointee lifetime is never actually relied upon.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(erased)
        });
        let group = Arc::new(Group {
            job,
            n: jobs,
            chunk,
            next: AtomicUsize::new(0),
            // The submitter participates unconditionally below, so it
            // takes its slot up front.
            slots: AtomicUsize::new(limit - 1),
            state: Mutex::new(GroupState::default()),
            done_cv: Condvar::new(),
            submitted_ns,
            first_claim: AtomicBool::new(false),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.push_back(Arc::clone(&group));
        }
        self.shared.work_cv.notify_all();
        // The submitter participates as slot 0 of the stats table.
        self.shared.work_instrumented(&group, 0);
        let panic = group.wait_done();
        if submitted_ns != 0 {
            self.shared.groups.fetch_add(1, Ordering::Relaxed);
            pcount_telemetry::histogram("pool/group_drain_ns")
                .record(pcount_telemetry::now_ns().saturating_sub(submitted_ns));
        }
        {
            // Prune the exhausted group so parked workers never rescan it.
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.retain(|g| !Arc::ptr_eq(g, &group));
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// The pool's accumulated telemetry: per-slot task/busy totals
    /// (slot 0 = submitting threads, `1..width` = workers), total groups
    /// drained, and the process-wide queue-wait / drain-latency
    /// histograms. All of it is recorded only while `pcount-telemetry`
    /// is enabled; with telemetry off the report is all zeros. The two
    /// histograms are global (shared with every other pool in the
    /// process), while the slot totals are this pool's own.
    pub fn utilization(&self) -> PoolUtilization {
        PoolUtilization {
            width: self.shared.width,
            worker_tasks: self
                .shared
                .stats
                .iter()
                .map(|s| s.tasks.load(Ordering::Relaxed))
                .collect(),
            worker_busy_ns: self
                .shared
                .stats
                .iter()
                .map(|s| s.busy_ns.load(Ordering::Relaxed))
                .collect(),
            groups: self.shared.groups.load(Ordering::Relaxed),
            queue_wait_ns: pcount_telemetry::histogram("pool/queue_wait_ns").summary(),
            drain_ns: pcount_telemetry::histogram("pool/group_drain_ns").summary(),
        }
    }

    /// Runs `f(0..jobs)` and collects the results **in index order**,
    /// regardless of which thread computed which index.
    pub fn map<T: Send, F: Fn(usize) -> T + Sync>(&self, jobs: usize, f: F) -> Vec<T> {
        self.map_limited(jobs, 0, f)
    }

    /// [`PoolRef::map`] with a concurrency `limit` (`0` = none). The
    /// output is identical for every limit and pool size.
    pub fn map_limited<T: Send, F: Fn(usize) -> T + Sync>(
        &self,
        jobs: usize,
        limit: usize,
        f: F,
    ) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        let slots = SendPtr(out.as_mut_ptr());
        self.run_limited(jobs, limit, |i| {
            // SAFETY: every index is claimed exactly once, so each slot
            // gets exactly one writer, and the Vec itself is not touched
            // until the group completes.
            unsafe { *slots.ptr().add(i) = Some(f(i)) };
        });
        out.into_iter()
            .map(|slot| slot.expect("every claimed index ran"))
            .collect()
    }

    /// Splits `data` into `chunk_len`-sized pieces and runs
    /// `f(chunk_index, chunk)` for each across the pool. The split is a
    /// function of `chunk_len` alone — never of the pool size — so
    /// callers stay deterministic for any worker count.
    pub fn par_chunks_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        limit: usize,
        f: F,
    ) {
        let chunk_len = chunk_len.max(1);
        let len = data.len();
        let jobs = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.run_limited(jobs, limit, |i| {
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunks are disjoint (one per index, claimed once),
            // so at most one `&mut` to each region exists at a time.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(i, chunk);
        });
    }
}

/// Raw-pointer wrapper that lets disjoint-region writers cross a job
/// closure's `Sync` bound (used by [`PoolRef::map`] internally and by
/// the GEMM / conv fan-outs in `pcount-tensor` / `pcount-nn`).
///
/// # Safety contract (on the user, not the type)
///
/// The wrapper itself is just a pointer; whoever dereferences it must
/// guarantee that concurrent jobs write disjoint regions and that the
/// pointee outlives the submission (which [`PoolRef::run`] guarantees by
/// blocking until the group drains).
pub struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a raw pointer for capture by `Sync` job closures.
    pub fn new(ptr: *mut T) -> Self {
        Self(ptr)
    }

    /// The wrapped pointer. An accessor (rather than direct field use)
    /// so closures capture the `Sync` wrapper, not a raw pointer field
    /// (edition-2021 disjoint capture would otherwise unravel the
    /// wrapper).
    pub fn ptr(&self) -> *mut T {
        self.0
    }
}

/// The host's available parallelism (fallback 1).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pool width requested by the `POOL_THREADS` environment variable
/// (`0` or unset/unparsable = auto).
fn env_width() -> usize {
    std::env::var("POOL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0)
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// The pool this thread belongs to: set for pool workers at spawn and
    /// for scoped [`install`] overrides; empty threads fall back to the
    /// global pool.
    static CURRENT: std::cell::RefCell<Option<PoolRef>> = const { std::cell::RefCell::new(None) };
}

/// The process-wide pool, created on first use with `POOL_THREADS`
/// workers (`0`/unset = auto).
pub fn global() -> PoolRef {
    GLOBAL.get_or_init(|| Pool::new(env_width())).handle()
}

/// The pool the calling thread should submit to: the pool it is a worker
/// of (so nested fan-outs share one worker budget), the [`install`]ed
/// override, or the global pool.
pub fn current() -> PoolRef {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(global)
}

/// Runs `f` with `pool` installed as the calling thread's
/// [`current`] pool. Used by tests and benches to pin exact worker
/// counts; nested submissions from inside `f` (on this thread) and from
/// the pool's own workers all resolve to `pool`.
pub fn install<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(pool.handle()));
    struct Restore(Option<PoolRef>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Maps the workspace-wide `0 = auto` thread-count knob to a concrete
/// worker count: explicit values pass through, `0` becomes the
/// [`current`] pool's width. Shared by every parallel evaluation surface
/// so the knob means the same thing everywhere.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        current().width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        let pool = Pool::new(4);
        let out = install(&pool, || current().map(100, |i| i * 3));
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_executes_every_index_exactly_once() {
        let pool = Pool::new(3);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.handle().run_chunked(hits.len(), 7, 0, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn width_one_pool_runs_inline() {
        let pool = Pool::new(1);
        let main_thread = std::thread::current().id();
        pool.handle().run(8, |_| {
            assert_eq!(std::thread::current().id(), main_thread);
        });
    }

    #[test]
    fn limit_one_runs_serially_in_index_order() {
        let pool = Pool::new(4);
        let order = Mutex::new(Vec::new());
        pool.handle().run_limited(10, 1, |i| {
            order.lock().unwrap().push(i);
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_submissions_share_the_pool_without_deadlock() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        install(&pool, || {
            current().run(6, |_| {
                // Workers resolve `current()` to their own pool; nesting
                // two levels deep must drain without deadlock even when
                // every worker is busy with outer jobs.
                let inner = current().map(8, |j| j as u64);
                total.fetch_add(inner.iter().sum::<u64>(), Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 28);
    }

    #[test]
    fn results_are_identical_for_any_pool_width_and_limit() {
        let reference: Vec<u64> = (0..100).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for width in [1, 2, 3, 8] {
            let pool = Pool::new(width);
            for limit in [0, 1, 2, 5] {
                let got = pool
                    .handle()
                    .map_limited(100, limit, |i| (i as u64).wrapping_mul(0x9E37));
                assert_eq!(got, reference, "width {width} limit {limit}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_covers_the_slice_with_ragged_tail() {
        let pool = Pool::new(3);
        let mut data = vec![0u32; 103];
        pool.handle().par_chunks_mut(&mut data, 10, 0, |ci, chunk| {
            assert!(chunk.len() == 10 || (ci == 10 && chunk.len() == 3));
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u32;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<u32>>());
    }

    #[test]
    fn job_panics_propagate_to_the_submitter() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.handle().run(16, |i| {
                if i == 9 {
                    panic!("job 9 exploded");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool survives the panic and keeps serving work.
        assert_eq!(pool.handle().map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn install_overrides_and_restores_current() {
        let outer_width = current().width();
        let pool = Pool::new(7);
        install(&pool, || {
            assert_eq!(current().width(), 7);
        });
        assert_eq!(current().width(), outer_width);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = Pool::new(4);
        pool.handle().run(8, |_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn utilization_accounts_every_executed_index() {
        let pool = Pool::new(3);
        // Results and totals must be unaffected by whether telemetry is
        // recording; only the stats themselves appear.
        pcount_telemetry::set_enabled(true);
        pool.handle().run_chunked(64, 4, 0, |_| {});
        pcount_telemetry::set_enabled(false);
        let report = pool.handle().utilization();
        assert_eq!(report.width, 3);
        assert_eq!(report.worker_tasks.len(), 3);
        assert_eq!(report.total_tasks(), 64, "every index attributed once");
        assert!(report.groups >= 1);
        assert!(report.drain_ns.count >= 1);
    }

    #[test]
    fn resolve_threads_passes_explicit_values_through() {
        assert_eq!(resolve_threads(3), 3);
        let pool = Pool::new(5);
        install(&pool, || assert_eq!(resolve_threads(0), 5));
    }
}
