//! Majority-voting post-processing of streaming people-count predictions.
//!
//! The paper's third optimisation step exploits the temporal correlation of
//! consecutive IR frames: the per-frame classifier output is pushed into a
//! small FIFO and the emitted prediction is the most frequent class in the
//! window (mode inference). No re-computation is involved, so the memory
//! cost is a handful of bytes and the latency/energy overhead is
//! negligible; the price is a detection delay of about half the window
//! length when the true count changes.
//!
//! # Example
//!
//! ```
//! use pcount_postproc::MajorityVoter;
//!
//! let mut voter = MajorityVoter::new(5);
//! // A single mis-prediction in a stable scene is filtered out.
//! let stream = [1, 1, 3, 1, 1];
//! let smoothed: Vec<usize> = stream.iter().map(|&p| voter.push(p)).collect();
//! assert_eq!(smoothed[4], 1);
//! ```

use std::collections::VecDeque;

/// Sliding-window majority-vote filter over class predictions.
///
/// Ties are broken in favour of the most recently pushed class among the
/// tied ones, which keeps the filter responsive when the occupancy truly
/// changes.
///
/// # Gap awareness
///
/// A dropped frame carries no prediction, but it still advances time: the
/// window is a *temporal* history, so a gap must age old votes out rather
/// than silently stretching the effective history over a longer wall-clock
/// span. [`MajorityVoter::push_missing`] records such a gap — it occupies
/// a window slot (evicting the oldest entry when full) without casting a
/// vote. Majorities are computed over the votes actually present;
/// [`MajorityVoter::current_opt`] returns `None` when the window holds no
/// votes at all (every slot is a gap).
#[derive(Debug, Clone)]
pub struct MajorityVoter {
    window: VecDeque<Option<usize>>,
    capacity: usize,
}

impl MajorityVoter {
    /// Creates a voter over a window of `capacity` most recent predictions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Self {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of window slots currently occupied (votes *and* gaps).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Number of actual votes in the window (slots that are not gaps).
    pub fn votes(&self) -> usize {
        self.window.iter().filter(|slot| slot.is_some()).count()
    }

    /// Returns `true` if nothing (vote or gap) has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (e.g. at a session boundary).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// Pushes the newest per-frame prediction and returns the smoothed
    /// (majority) prediction over the current window.
    pub fn push(&mut self, prediction: usize) -> usize {
        self.push_slot(Some(prediction));
        self.current()
    }

    /// Records a dropped frame: the gap occupies a window slot (aging the
    /// oldest entry out when the window is full) but casts no vote.
    /// Returns the majority over the votes still present, or `None` when
    /// the window no longer holds any vote.
    pub fn push_missing(&mut self) -> Option<usize> {
        self.push_slot(None);
        self.current_opt()
    }

    fn push_slot(&mut self, slot: Option<usize>) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(slot);
    }

    /// The majority class of the current window.
    ///
    /// # Panics
    ///
    /// Panics if the window holds no vote (empty, or every slot a gap) —
    /// use [`MajorityVoter::current_opt`] on streams that may drop frames.
    pub fn current(&self) -> usize {
        self.current_opt()
            .expect("no predictions in the voting window")
    }

    /// The majority class over the votes present in the window, or `None`
    /// when the window holds no vote at all.
    ///
    /// Ties break toward the class seen most recently; gaps count toward
    /// ages (they advance time) but never toward any class.
    pub fn current_opt(&self) -> Option<usize> {
        let max_class = self.window.iter().flatten().copied().max()?;
        let mut counts = vec![0usize; max_class + 1];
        let mut last_seen = vec![0usize; max_class + 1];
        let mut most_recent = 0usize;
        for (age, slot) in self.window.iter().enumerate() {
            let Some(p) = *slot else { continue };
            counts[p] += 1;
            last_seen[p] = age;
            most_recent = p;
        }
        let mut best = most_recent;
        for class in 0..counts.len() {
            if counts[class] > counts[best]
                || (counts[class] == counts[best] && last_seen[class] > last_seen[best])
            {
                best = class;
            }
        }
        Some(best)
    }
}

/// Applies majority voting over an ordered prediction stream, resetting
/// nothing: the `i`-th output is the majority over predictions
/// `[max(0, i-window+1) ..= i]`, exactly what a deployed sensor would emit.
pub fn apply_majority(predictions: &[usize], window: usize) -> Vec<usize> {
    let mut voter = MajorityVoter::new(window);
    predictions.iter().map(|&p| voter.push(p)).collect()
}

/// Detection delay (in frames) of a majority filter of length `window`
/// after a step change, assuming the classifier is perfect: the filter
/// needs a strict majority of new-class frames.
pub fn step_change_delay(window: usize) -> usize {
    window / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_glitch_is_filtered() {
        let preds = [2, 2, 2, 0, 2, 2, 2];
        let out = apply_majority(&preds, 5);
        // Once the window is warm, the glitch never surfaces.
        assert!(out[3..].iter().all(|&p| p == 2));
    }

    #[test]
    fn persistent_change_is_adopted_after_half_window() {
        let mut preds = vec![1usize; 10];
        preds.extend(vec![3usize; 10]);
        let out = apply_majority(&preds, 5);
        let delay = step_change_delay(5);
        // Before the change: always 1. After change + delay: always 3.
        assert!(out[..10].iter().all(|&p| p == 1));
        assert!(out[10 + delay..].iter().all(|&p| p == 3));
    }

    #[test]
    fn window_of_one_is_identity() {
        let preds = [0, 3, 1, 2, 2, 0];
        assert_eq!(apply_majority(&preds, 1), preds.to_vec());
    }

    #[test]
    fn tie_breaks_towards_most_recent() {
        let mut voter = MajorityVoter::new(4);
        voter.push(1);
        voter.push(1);
        voter.push(2);
        assert_eq!(voter.push(2), 2);
    }

    #[test]
    fn reset_clears_history() {
        let mut voter = MajorityVoter::new(3);
        voter.push(3);
        voter.push(3);
        voter.reset();
        assert!(voter.is_empty());
        assert_eq!(voter.push(0), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = MajorityVoter::new(0);
    }

    #[test]
    fn gaps_age_old_votes_out_of_the_window() {
        let mut voter = MajorityVoter::new(3);
        voter.push(1);
        voter.push(1);
        // Two dropped frames advance time: only one vote for class 1 left.
        assert_eq!(voter.push_missing(), Some(1));
        assert_eq!(voter.push_missing(), Some(1));
        assert_eq!(voter.votes(), 1);
        // One fresh vote now outweighs the aged-out majority.
        assert_eq!(voter.push(2), 2);
    }

    #[test]
    fn gap_tie_break_is_deterministic_towards_most_recent() {
        // Window [1, gap, 2, gap]: one vote each; class 2 is more recent.
        let mut voter = MajorityVoter::new(4);
        voter.push(1);
        voter.push_missing();
        voter.push(2);
        assert_eq!(voter.push_missing(), Some(2));
        // Re-running the identical sequence gives the identical answer.
        let mut again = MajorityVoter::new(4);
        again.push(1);
        again.push_missing();
        again.push(2);
        assert_eq!(again.push_missing(), Some(2));
    }

    #[test]
    fn window_of_one_with_missing_frames() {
        let mut voter = MajorityVoter::new(1);
        assert_eq!(voter.push(3), 3);
        // The single slot is now a gap: no vote survives.
        assert_eq!(voter.push_missing(), None);
        assert_eq!(voter.push(0), 0);
    }

    #[test]
    fn all_missing_window_has_no_majority() {
        let mut voter = MajorityVoter::new(3);
        assert_eq!(voter.push_missing(), None);
        assert_eq!(voter.push_missing(), None);
        assert_eq!(voter.push_missing(), None);
        assert_eq!(voter.current_opt(), None);
        assert_eq!(voter.votes(), 0);
        assert_eq!(voter.len(), 3, "gaps still occupy slots");
        // Recovery: the first real vote wins immediately.
        assert_eq!(voter.push(2), 2);
    }

    #[test]
    #[should_panic(expected = "no predictions")]
    fn current_panics_on_vote_free_window() {
        let mut voter = MajorityVoter::new(2);
        voter.push_missing();
        let _ = voter.current();
    }

    #[test]
    fn improves_accuracy_on_noisy_stable_stream() {
        // Ground truth: 40 frames of class 2; classifier is wrong on every
        // 5th frame. Majority voting should fix all errors after warm-up.
        let truth = vec![2usize; 40];
        let noisy: Vec<usize> = (0..40).map(|i| if i % 5 == 4 { 0 } else { 2 }).collect();
        let smoothed = apply_majority(&noisy, 5);
        let raw_errors = noisy.iter().zip(&truth).filter(|(a, b)| a != b).count();
        let smoothed_errors = smoothed.iter().zip(&truth).filter(|(a, b)| a != b).count();
        assert!(smoothed_errors < raw_errors);
        assert_eq!(smoothed_errors, 0);
    }

    proptest! {
        #[test]
        fn output_class_is_always_present_in_window(
            preds in proptest::collection::vec(0usize..4, 1..100),
            window in 1usize..9,
        ) {
            let out = apply_majority(&preds, window);
            prop_assert_eq!(out.len(), preds.len());
            for (i, &o) in out.iter().enumerate() {
                let start = i.saturating_sub(window - 1);
                prop_assert!(preds[start..=i].contains(&o),
                    "output {} not in window {:?}", o, &preds[start..=i]);
            }
        }

        #[test]
        fn constant_stream_is_unchanged(class in 0usize..4, len in 1usize..50, window in 1usize..9) {
            let preds = vec![class; len];
            prop_assert_eq!(apply_majority(&preds, window), preds);
        }
    }
}
