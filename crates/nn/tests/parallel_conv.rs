//! Bit-identity of the pool-parallel `Conv2d` batches across pool sizes.
//!
//! Forward fans images out over the `pcount-runtime` pool with disjoint
//! output planes; backward computes per-image gradient partials in
//! parallel and reduces them in image order on the caller. Both must be
//! **bit-identical** for any pool width — this is what makes
//! `POOL_THREADS` a pure performance knob for the whole training stack.

use pcount_nn::{Conv2d, Layer, Mode};
use pcount_runtime::{install, Pool};
use pcount_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} diverged ({x} vs {y})"
        );
    }
}

/// Runs forward + backward on a fresh layer clone under the given pool
/// and returns (output, input grad, weight grad, bias grad).
fn run_under_pool(
    conv: &Conv2d,
    x: &Tensor,
    gy_scale: f32,
    pool: &Pool,
) -> (Tensor, Tensor, Tensor, Tensor) {
    let mut conv = conv.clone();
    install(pool, || {
        conv.zero_grad();
        let y = conv.forward(x, Mode::Train);
        let gy = y.map(|v| v * gy_scale);
        let gx = conv.backward(&gy);
        (y, gx, conv.weight_grad.clone(), conv.bias_grad.clone())
    })
}

#[test]
fn conv_batches_are_bit_identical_for_any_pool_width() {
    let mut rng = StdRng::seed_from_u64(42);
    for &(in_c, out_c, k, stride, padding, batch) in &[
        (3usize, 8usize, 3usize, 1usize, 1usize, 7usize),
        (2, 5, 3, 2, 1, 4),
        (4, 6, 1, 1, 0, 9),
    ] {
        let conv = Conv2d::new(in_c, out_c, k, stride, padding, &mut rng);
        let x = Tensor::randn(&[batch, in_c, 8, 8], 1.0, &mut rng);
        let serial = run_under_pool(&conv, &x, 0.5, &Pool::new(1));
        for width in [2, 4] {
            let parallel = run_under_pool(&conv, &x, 0.5, &Pool::new(width));
            assert_bits_eq(&serial.0, &parallel.0, "forward");
            assert_bits_eq(&serial.1, &parallel.1, "input grad");
            assert_bits_eq(&serial.2, &parallel.2, "weight grad");
            assert_bits_eq(&serial.3, &parallel.3, "bias grad");
        }
    }
}

#[test]
fn repeated_backward_accumulates_identically_under_a_pool() {
    // Gradient accumulation across steps (without zero_grad) must also be
    // pool-size independent: the per-image partial reduction adds onto
    // whatever is already in the grad tensors.
    let mut rng = StdRng::seed_from_u64(7);
    let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
    let x = Tensor::randn(&[5, 2, 8, 8], 1.0, &mut rng);
    let grads = |pool: &Pool| {
        let mut conv = conv.clone();
        install(pool, || {
            conv.zero_grad();
            for _ in 0..3 {
                let y = conv.forward(&x, Mode::Train);
                let _ = conv.backward(&y);
            }
            (conv.weight_grad.clone(), conv.bias_grad.clone())
        })
    };
    let serial = grads(&Pool::new(1));
    let parallel = grads(&Pool::new(3));
    assert_bits_eq(&serial.0, &parallel.0, "accumulated weight grad");
    assert_bits_eq(&serial.1, &parallel.1, "accumulated bias grad");
}
