//! Property tests holding the GEMM-lowered `Conv2d`/`Linear` passes to the
//! naive nested-loop reference implementations across stride / padding /
//! channel shapes, including the externally-supplied-weight path the NAS
//! masked layers and the QAT fake-quantised weights ride.
//!
//! Forward/backward results must agree within 1e-5 *relative* tolerance
//! (the GEMM blocks the k dimension, so accumulation order differs); where
//! the accumulation order is preserved — a single k block smaller than one
//! register panel is still summed in index order per output element for
//! the 1x1 kernel with one input channel — the match must be bit-exact.

use pcount_nn::{Conv2d, Layer, Linear, Mode};
use pcount_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts `a ≈ b` within `tol` relative to the element magnitude.
fn assert_rel_close(got: &Tensor, want: &Tensor, tol: f32, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (&g, &w)) in got.data().iter().zip(want.data().iter()).enumerate() {
        let scale = 1.0f32.max(w.abs());
        assert!(
            (g - w).abs() <= tol * scale,
            "{what}: element {i} diverged (gemm {g}, naive {w})"
        );
    }
}

/// Runs forward + backward through both conv implementations and compares
/// outputs and all gradients. `mask_channels` zeroes a deterministic subset
/// of the effective weight's output channels, mimicking the NAS
/// masked-layer / QAT effective-weight path.
#[allow(clippy::too_many_arguments)]
fn check_conv(
    seed: u64,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    padding: usize,
    n: usize,
    hw: usize,
    mask_channels: bool,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    if hw + 2 * padding < k {
        return; // degenerate geometry
    }
    let mut conv = Conv2d::new(in_c, out_c, k, stride, padding, &mut rng);
    let x = Tensor::randn(&[n, in_c, hw, hw], 1.0, &mut rng);
    let mut weight = conv.weight.clone();
    if mask_channels {
        // Zero every other output channel, like a binarised channel mask
        // applied to the effective weight.
        let per_c = in_c * k * k;
        for co in (1..out_c).step_by(2) {
            weight.data_mut()[co * per_c..(co + 1) * per_c].fill(0.0);
        }
    }

    conv.zero_grad();
    let y_gemm = conv.forward_with_weight(&x, &weight);
    let gy = y_gemm.scale(0.5); // arbitrary non-trivial upstream gradient
    let gx_gemm = conv.backward_with_weight(&gy, &weight);
    let wg_gemm = conv.weight_grad.clone();
    let bg_gemm = conv.bias_grad.clone();

    conv.zero_grad();
    let y_naive = conv.forward_naive_with_weight(&x, &weight);
    let gx_naive = conv.backward_naive_with_weight(&gy, &weight);
    let wg_naive = conv.weight_grad.clone();
    let bg_naive = conv.bias_grad.clone();

    assert_rel_close(&y_gemm, &y_naive, 1e-5, "conv forward");
    assert_rel_close(&gx_gemm, &gx_naive, 1e-5, "conv input grad");
    assert_rel_close(&wg_gemm, &wg_naive, 1e-5, "conv weight grad");
    assert_rel_close(&bg_gemm, &bg_naive, 1e-5, "conv bias grad");
}

proptest! {
    #[test]
    fn conv_gemm_matches_naive_across_shapes(
        seed in 0u64..1000,
        in_c in 1usize..4,
        out_c in 1usize..6,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        n in 1usize..4,
    ) {
        check_conv(seed, in_c, out_c, k, stride, padding, n, 8, false);
    }

    #[test]
    fn conv_gemm_matches_naive_on_masked_weights(
        seed in 0u64..1000,
        out_c in 2usize..8,
        stride in 1usize..3,
    ) {
        check_conv(seed, in_c_for(out_c), out_c, 3, stride, 1, 2, 8, true);
    }

    #[test]
    fn linear_gemm_matches_naive(
        seed in 0u64..1000,
        n in 1usize..6,
        in_f in 1usize..40,
        out_f in 1usize..12,
        mask in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fc = Linear::new(in_f, out_f, &mut rng);
        let x = Tensor::randn(&[n, in_f], 1.0, &mut rng);
        let mut weight = fc.weight.clone();
        if mask {
            for o in (1..out_f).step_by(2) {
                weight.data_mut()[o * in_f..(o + 1) * in_f].fill(0.0);
            }
        }

        fc.zero_grad();
        let y_gemm = fc.forward_with_weight(&x, &weight);
        let gy = y_gemm.scale(0.5);
        let gx_gemm = fc.backward_with_weight(&gy, &weight);
        let wg_gemm = fc.weight_grad.clone();
        let bg_gemm = fc.bias_grad.clone();

        fc.zero_grad();
        let y_naive = fc.forward_naive_with_weight(&x, &weight);
        let gx_naive = fc.backward_naive_with_weight(&gy, &weight);

        assert_rel_close(&y_gemm, &y_naive, 1e-5, "linear forward");
        assert_rel_close(&gx_gemm, &gx_naive, 1e-5, "linear input grad");
        assert_rel_close(&wg_gemm, &fc.weight_grad, 1e-5, "linear weight grad");
        assert_rel_close(&bg_gemm, &fc.bias_grad, 1e-5, "linear bias grad");
    }
}

/// In-channel count paired to the masked-weight case (keeps the k range
/// that the column matrix spans non-trivial without exploding runtime).
fn in_c_for(out_c: usize) -> usize {
    1 + out_c % 3
}

#[test]
fn conv_1x1_single_channel_is_bit_exact() {
    // One input channel, 1x1 kernel: the GEMM's k dimension is 1, so every
    // output element is a single multiply — accumulation order is trivially
    // preserved and the two implementations must agree bit-for-bit.
    let mut rng = StdRng::seed_from_u64(7);
    let mut conv = Conv2d::new(1, 3, 1, 1, 0, &mut rng);
    let x = Tensor::randn(&[2, 1, 8, 8], 1.0, &mut rng);
    let weight = conv.weight.clone();
    let y_gemm = conv.forward_with_weight(&x, &weight);
    let y_naive = conv.forward_naive_with_weight(&x, &weight);
    assert_eq!(y_gemm.data(), y_naive.data(), "1x1 conv must be bit-exact");
}

#[test]
fn layer_trait_path_rides_the_gemm_implementation() {
    // `Layer::forward`/`backward` (the path Sequential drives) must feed
    // the GEMM implementation: train a step through both entry points and
    // compare.
    let mut rng = StdRng::seed_from_u64(9);
    let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
    let x = Tensor::randn(&[3, 2, 8, 8], 1.0, &mut rng);
    let weight = conv.weight.clone();
    let via_trait = conv.forward(&x, Mode::Train);
    let via_gemm = conv.forward_with_weight(&x, &weight);
    assert_eq!(via_trait.data(), via_gemm.data());
}
