//! Mini-batch training and evaluation loops.

use crate::layer::{Mode, Sequential};
use crate::loss::CrossEntropyLoss;
use crate::metrics::balanced_accuracy;
use crate::optim::{Adam, Optimizer};
use pcount_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of a training run.
///
/// The paper trains for 500 epochs with Adam, learning rate `1e-3` and
/// batch size 128; the defaults here are the same except for a smaller
/// epoch count so the reproduction experiments finish in CPU-minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Print the loss after every epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 128,
            learning_rate: 1e-3,
            weight_decay: 1e-4,
            verbose: false,
        }
    }
}

/// Statistics collected during a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainStats {
    /// Mean loss of every epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Balanced accuracy on the training data after the last epoch.
    pub final_train_bas: f64,
}

impl TrainStats {
    /// Loss of the last epoch, or `f32::NAN` if no epoch ran.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Gathers rows (`dim 0` slices) of `x` at the given indices into a new
/// tensor, preserving the remaining dimensions.
///
/// # Panics
///
/// Panics if any index is out of bounds or `x` is 0-dimensional.
pub fn batch_select(x: &Tensor, indices: &[usize]) -> Tensor {
    let shape = x.shape();
    assert!(!shape.is_empty(), "batch_select needs rank >= 1");
    let row: usize = shape[1..].iter().product();
    let mut out_shape = shape.to_vec();
    out_shape[0] = indices.len();
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        assert!(i < shape[0], "index {i} out of bounds");
        data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
    }
    Tensor::from_vec(data, &out_shape)
}

/// Runs prediction in mini-batches and returns the argmax class per sample.
pub fn predict(net: &mut Sequential, x: &Tensor, batch_size: usize) -> Vec<usize> {
    let n = x.shape()[0];
    let mut preds = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let xb = batch_select(x, &idx);
        let logits = net.forward(&xb, Mode::Eval);
        preds.extend(logits.argmax_rows());
        start = end;
    }
    preds
}

/// Evaluates a network and returns its Balanced Accuracy Score.
pub fn evaluate(net: &mut Sequential, x: &Tensor, y: &[usize], num_classes: usize) -> f64 {
    let preds = predict(net, x, 256);
    balanced_accuracy(&preds, y, num_classes)
}

/// Trains a classifier with Adam and cross-entropy.
///
/// `x` is `[N, C, H, W]`, `y` holds the integer class of each sample.
///
/// # Panics
///
/// Panics if `x` and `y` disagree on the number of samples.
pub fn train_classifier<R: Rng>(
    net: &mut Sequential,
    x: &Tensor,
    y: &[usize],
    cfg: &TrainConfig,
    rng: &mut R,
) -> TrainStats {
    let n = x.shape()[0];
    assert_eq!(n, y.len(), "sample count mismatch");
    assert!(n > 0, "cannot train on an empty dataset");
    let num_classes = y.iter().copied().max().unwrap_or(0) + 1;
    let mut opt = Adam::new(cfg.learning_rate, cfg.weight_decay);
    let mut loss_fn = CrossEntropyLoss::new();
    let mut stats = TrainStats::default();
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let xb = batch_select(x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y[i]).collect();
            net.zero_grad();
            let logits = net.forward(&xb, Mode::Train);
            let loss = loss_fn.forward(&logits, &yb);
            let grad = loss_fn.backward();
            net.backward(&grad);
            opt.step(net.params_and_grads());
            epoch_loss += loss;
            batches += 1;
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        stats.epoch_losses.push(mean_loss);
        if cfg.verbose {
            eprintln!("epoch {epoch:3}  loss {mean_loss:.4}");
        }
    }
    stats.final_train_bas = evaluate(net, x, y, num_classes);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CnnConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a trivially separable synthetic dataset: class = quadrant of
    /// the hottest pixel.
    fn toy_dataset(n: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::zeros(&[n, 1, 8, 8]);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = rng.gen_range(0..4usize);
            let (cy, cx) = match class {
                0 => (2, 2),
                1 => (2, 6),
                2 => (6, 2),
                _ => (6, 6),
            };
            for dy in 0..2 {
                for dx in 0..2 {
                    x.set(&[i, 0, cy + dy - 1, cx + dx - 1], 3.0);
                }
            }
            // Mild noise.
            for h in 0..8 {
                for w in 0..8 {
                    let v = x.at(&[i, 0, h, w]) + rng.gen_range(-0.2..0.2);
                    x.set(&[i, 0, h, w], v);
                }
            }
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn batch_select_gathers_rows() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        let b = batch_select(&x, &[2, 0]);
        assert_eq!(b.shape(), &[2, 3]);
        assert_eq!(b.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn batch_select_checks_bounds() {
        let x = Tensor::zeros(&[2, 3]);
        let _ = batch_select(&x, &[5]);
    }

    #[test]
    fn training_learns_a_separable_toy_problem() {
        let mut rng = StdRng::seed_from_u64(42);
        let (x, y) = toy_dataset(240, &mut rng);
        let cfg = CnnConfig::seed().with_channels(4, 8, 16);
        let mut net = cfg.build(&mut rng);
        let train_cfg = TrainConfig {
            epochs: 12,
            batch_size: 32,
            learning_rate: 3e-3,
            weight_decay: 0.0,
            verbose: false,
        };
        let stats = train_classifier(&mut net, &x, &y, &train_cfg, &mut rng);
        assert!(
            stats.final_train_bas > 0.9,
            "training failed to fit toy data: BAS {}",
            stats.final_train_bas
        );
        assert!(stats.final_loss() < stats.epoch_losses[0]);
    }

    #[test]
    fn predict_returns_one_class_per_sample() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CnnConfig::seed().with_channels(2, 2, 4);
        let mut net = cfg.build(&mut rng);
        let x = Tensor::zeros(&[5, 1, 8, 8]);
        let preds = predict(&mut net, &x, 2);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 4));
    }
}
