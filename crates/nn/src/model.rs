//! The seed CNN architecture from the paper and its cost model.

use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use crate::layer::{Flatten, MaxPool2d, Relu, Sequential};
use crate::linear::Linear;
use rand::Rng;

/// Dimensions of one parameterised layer (convolution or linear) of the
/// people-counting CNN, used by the NAS cost model, the quantizer and the
/// platform memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerDims {
    /// Input channels/features.
    pub in_features: usize,
    /// Output channels/features.
    pub out_features: usize,
    /// Square kernel size (1 for linear layers).
    pub kernel: usize,
    /// Number of output spatial positions (H*W; 1 for linear layers).
    pub output_positions: usize,
}

impl LayerDims {
    /// Number of weights (excluding bias).
    pub fn weight_count(&self) -> usize {
        self.out_features * self.in_features * self.kernel * self.kernel
    }

    /// Number of parameters including bias.
    pub fn param_count(&self) -> usize {
        self.weight_count() + self.out_features
    }

    /// Number of multiply-accumulate operations per inference.
    pub fn macs(&self) -> usize {
        self.weight_count() * self.output_positions
    }
}

/// Hyper-parameters of the people-counting CNN.
///
/// The seed configuration ([`CnnConfig::seed`]) reproduces the largest model
/// of Xie et al. that the paper uses as the DNAS starting point: two 3x3
/// convolutions with 64 channels separated by a 2x2 max-pool, followed by a
/// 64-unit hidden linear layer and a 4-class output layer, on 8x8
/// single-channel inputs.
///
/// # Example
///
/// ```
/// let cfg = pcount_nn::CnnConfig::seed();
/// assert_eq!(cfg.conv1_out, 64);
/// assert!(cfg.num_params() > 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CnnConfig {
    /// Input channels (1 for a single IR frame).
    pub input_channels: usize,
    /// Input spatial size (8 for the 8x8 LINAIGE frames).
    pub input_size: usize,
    /// Output channels of the first convolution.
    pub conv1_out: usize,
    /// Output channels of the second convolution.
    pub conv2_out: usize,
    /// Hidden units of the first linear layer.
    pub fc1_out: usize,
    /// Number of classes (people counts 0..=3 -> 4).
    pub num_classes: usize,
}

impl CnnConfig {
    /// The seed architecture used by the paper's DNAS.
    pub fn seed() -> Self {
        Self {
            input_channels: 1,
            input_size: 8,
            conv1_out: 64,
            conv2_out: 64,
            fc1_out: 64,
            num_classes: 4,
        }
    }

    /// Returns a copy with different channel/feature counts, keeping the
    /// input geometry and class count.
    pub fn with_channels(self, conv1_out: usize, conv2_out: usize, fc1_out: usize) -> Self {
        Self {
            conv1_out,
            conv2_out,
            fc1_out,
            ..self
        }
    }

    /// Spatial size after the max-pool (input of the second convolution).
    pub fn pooled_size(&self) -> usize {
        self.input_size / 2
    }

    /// Flattened feature count entering the first linear layer.
    pub fn flatten_features(&self) -> usize {
        self.conv2_out * self.pooled_size() * self.pooled_size()
    }

    /// Dimensions of the four parameterised layers in network order:
    /// conv1, conv2, fc1, fc2.
    pub fn layer_dims(&self) -> Vec<LayerDims> {
        let p = self.pooled_size();
        vec![
            LayerDims {
                in_features: self.input_channels,
                out_features: self.conv1_out,
                kernel: 3,
                output_positions: self.input_size * self.input_size,
            },
            LayerDims {
                in_features: self.conv1_out,
                out_features: self.conv2_out,
                kernel: 3,
                output_positions: p * p,
            },
            LayerDims {
                in_features: self.flatten_features(),
                out_features: self.fc1_out,
                kernel: 1,
                output_positions: 1,
            },
            LayerDims {
                in_features: self.fc1_out,
                out_features: self.num_classes,
                kernel: 1,
                output_positions: 1,
            },
        ]
    }

    /// Total parameters of the conv/linear layers (bias included,
    /// batch-norm excluded since it is folded before deployment).
    pub fn num_params(&self) -> usize {
        self.layer_dims().iter().map(LayerDims::param_count).sum()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn macs(&self) -> usize {
        self.layer_dims().iter().map(LayerDims::macs).sum()
    }

    /// Model size in bytes at a uniform floating-point precision (32-bit).
    pub fn memory_bytes_fp32(&self) -> usize {
        self.num_params() * 4
    }

    /// Builds the trainable network:
    /// `conv-bn-relu-pool-conv-bn-relu-flatten-fc-relu-fc`.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Sequential {
        Sequential::new(vec![
            Box::new(Conv2d::new(
                self.input_channels,
                self.conv1_out,
                3,
                1,
                1,
                rng,
            )),
            Box::new(BatchNorm2d::new(self.conv1_out)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(self.conv1_out, self.conv2_out, 3, 1, 1, rng)),
            Box::new(BatchNorm2d::new(self.conv2_out)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(self.flatten_features(), self.fc1_out, rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(self.fc1_out, self.num_classes, rng)),
        ])
    }
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self::seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use pcount_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seed_matches_paper_architecture() {
        let cfg = CnnConfig::seed();
        let dims = cfg.layer_dims();
        assert_eq!(dims.len(), 4);
        assert_eq!(dims[0].out_features, 64);
        assert_eq!(dims[1].in_features, 64);
        assert_eq!(dims[2].in_features, 64 * 4 * 4);
        assert_eq!(dims[3].out_features, 4);
    }

    #[test]
    fn seed_param_and_mac_counts_are_consistent() {
        let cfg = CnnConfig::seed();
        // conv1: 64*9+64, conv2: 64*64*9+64, fc1: 64*1024+64, fc2: 4*64+4
        let expected_params = (64 * 9 + 64) + (64 * 64 * 9 + 64) + (64 * 1024 + 64) + (4 * 64 + 4);
        assert_eq!(cfg.num_params(), expected_params);
        let expected_macs = 64 * 9 * 64 + 64 * 64 * 9 * 16 + 64 * 1024 + 4 * 64;
        assert_eq!(cfg.macs(), expected_macs);
        assert_eq!(cfg.memory_bytes_fp32(), expected_params * 4);
    }

    #[test]
    fn smaller_config_has_fewer_params() {
        let seed = CnnConfig::seed();
        let small = seed.with_channels(8, 8, 16);
        assert!(small.num_params() < seed.num_params() / 10);
        assert!(small.macs() < seed.macs() / 10);
    }

    #[test]
    fn built_network_produces_class_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CnnConfig::seed().with_channels(4, 4, 8);
        let mut net = cfg.build(&mut rng);
        let x = Tensor::zeros(&[3, 1, 8, 8]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[3, 4]);
    }

    #[test]
    fn network_param_count_matches_config_plus_batchnorm() {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = CnnConfig::seed().with_channels(8, 8, 16);
        let mut net = cfg.build(&mut rng);
        let bn_params = 2 * 8 + 2 * 8;
        assert_eq!(net.num_params(), cfg.num_params() + bn_params);
    }
}
