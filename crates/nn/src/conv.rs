//! 2-D convolution over NCHW tensors.

use crate::layer::{Layer, Mode};
use pcount_runtime::SendPtr;
use pcount_tensor::{col2im, gemm, im2col, GemmScratch, Tensor};
use rand::Rng;
use std::cell::RefCell;

thread_local! {
    /// Per-worker arena for the parallel per-image batches: the
    /// `pcount-runtime` pool threads are persistent, so each worker's
    /// packing buffers and im2col staging warm up once and are reused
    /// for the rest of the process.
    static WORKER_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::default());
}

/// Resizes an arena buffer to exactly `len` zeroed elements (capacity is
/// kept, so steady-state reuse performs no allocation).
fn sized(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// Geometry of one convolution call, shared by the per-image jobs.
#[derive(Clone, Copy)]
struct ConvGeom {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    co: usize,
    ho: usize,
    wo: usize,
}

impl ConvGeom {
    fn plane(&self) -> usize {
        self.ho * self.wo
    }
    fn ckk(&self) -> usize {
        self.c * self.k * self.k
    }
    fn chw(&self) -> usize {
        self.c * self.h * self.w
    }
}

/// One image of the GEMM-lowered forward pass:
/// `dst[Co, Ho*Wo] = W · col(img) + b`.
fn forward_image(
    scratch: &mut GemmScratch,
    geom: ConvGeom,
    img: &[f32],
    wd: &[f32],
    bd: &[f32],
    dst: &mut [f32],
) {
    let mut col = scratch.take_aux();
    let (ho, wo) = im2col(
        img,
        geom.c,
        geom.h,
        geom.w,
        geom.k,
        geom.stride,
        geom.padding,
        &mut col,
    );
    debug_assert_eq!((ho, wo), (geom.ho, geom.wo));
    gemm(
        scratch,
        false,
        false,
        geom.co,
        geom.plane(),
        geom.ckk(),
        wd,
        &col,
        dst,
        false,
    );
    scratch.give_aux(col);
    for (co, row) in dst.chunks_exact_mut(geom.plane()).enumerate() {
        let b = bd[co];
        for v in row {
            *v += b;
        }
    }
}

/// One image of the GEMM-lowered backward pass: weight-gradient partial
/// `dw_n = dY_n · col_nᵀ`, bias-gradient partial `db_n[co] = Σ dY_n[co, :]`
/// and input gradient `grad_img += col2im(Wᵀ · dY_n)`.
#[allow(clippy::too_many_arguments)]
fn backward_image(
    scratch: &mut GemmScratch,
    geom: ConvGeom,
    img: &[f32],
    wd: &[f32],
    gy: &[f32],
    grad_img: &mut [f32],
    dw_n: &mut [f32],
    db_n: &mut [f32],
) {
    let plane = geom.plane();
    let ckk = geom.ckk();
    let gy = &gy[..geom.co * plane];
    let mut col = scratch.take_aux();
    let _ = im2col(
        img,
        geom.c,
        geom.h,
        geom.w,
        geom.k,
        geom.stride,
        geom.padding,
        &mut col,
    );
    // dW_n[Co, Ci*k*k] = dY_n[Co, Ho*Wo] · col_nᵀ[Ho*Wo, Ci*k*k].
    gemm(
        scratch, false, true, geom.co, ckk, plane, gy, &col, dw_n, false,
    );
    // db_n[co] = Σ dY_n[co, :].
    for (b, row) in db_n.iter_mut().zip(gy.chunks_exact(plane)) {
        *b = row.iter().sum::<f32>();
    }
    // dcol[Ci*k*k, Ho*Wo] = Wᵀ[Ci*k*k, Co] · dY_n[Co, Ho*Wo].
    let mut dcol = scratch.take_aux();
    sized(&mut dcol, ckk * plane);
    gemm(
        scratch, true, false, ckk, plane, geom.co, wd, gy, &mut dcol, false,
    );
    col2im(
        &dcol,
        geom.c,
        geom.h,
        geom.w,
        geom.k,
        geom.stride,
        geom.padding,
        grad_img,
    );
    scratch.give_aux(dcol);
    scratch.give_aux(col);
}

/// A 2-D convolution layer with square kernels, zero padding and bias.
///
/// Weight layout is `[out_channels, in_channels, k, k]`; inputs and outputs
/// are NCHW. Forward and backward lower to cache-blocked GEMMs over
/// im2col-packed buffers (`pcount-tensor`'s [`gemm`] engine), with the
/// original 7-deep nested loops kept as
/// [`Conv2d::forward_naive_with_weight`] /
/// [`Conv2d::backward_naive_with_weight`] — the bit-for-bit reference the
/// equivalence tests and the training-throughput bench compare against.
///
/// # Example
///
/// ```
/// use pcount_nn::{Conv2d, Layer, Mode};
/// use pcount_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(1, 8, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[1, 1, 8, 8]), Mode::Eval);
/// assert_eq!(y.shape(), &[1, 8, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Weights `[out, in, k, k]`.
    pub weight: Tensor,
    /// Bias `[out]`.
    pub bias: Tensor,
    /// Accumulated weight gradient.
    pub weight_grad: Tensor,
    /// Accumulated bias gradient.
    pub bias_grad: Tensor,
    cached_input: Option<Tensor>,
    scratch: GemmScratch,
}

impl Conv2d {
    /// Creates a convolution with He-style weight initialisation.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0);
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight: Tensor::randn(&[out_channels, in_channels, kernel, kernel], std, rng),
            bias: Tensor::zeros(&[out_channels]),
            weight_grad: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias_grad: Tensor::zeros(&[out_channels]),
            cached_input: None,
            scratch: GemmScratch::default(),
        }
    }

    /// Creates a convolution with explicitly provided weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes are inconsistent with the declared
    /// dimensions.
    pub fn from_parts(weight: Tensor, bias: Tensor, stride: usize, padding: usize) -> Self {
        let shape = weight.shape().to_vec();
        assert_eq!(shape.len(), 4, "conv weight must be [out, in, k, k]");
        assert_eq!(shape[2], shape[3], "conv kernel must be square");
        assert_eq!(bias.shape(), &[shape[0]], "bias must match out channels");
        let (out_channels, in_channels, kernel) = (shape[0], shape[1], shape[2]);
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight_grad: Tensor::zeros(&shape),
            bias_grad: Tensor::zeros(&[out_channels]),
            weight,
            bias,
            cached_input: None,
            scratch: GemmScratch::default(),
        }
    }

    /// Output spatial size for a given input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        (input + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Forward pass using an externally supplied effective weight tensor
    /// (used by the QAT fake-quantised weights and the NAS masked-layer
    /// path); caches the input for backward.
    ///
    /// Lowered to one GEMM per image over an im2col-packed column matrix:
    /// `out_n[Co, Ho*Wo] = W[Co, Ci*k*k] · col_n[Ci*k*k, Ho*Wo] + b`.
    /// Images are independent, so batches with more than one image fan
    /// out over the persistent `pcount-runtime` pool (each worker stages
    /// its column matrix in a warm thread-local arena); single images and
    /// width-1 pools run inline on the layer's own arena. Either way the
    /// packing buffers are reused across calls, so steady-state training
    /// allocates only the output tensor, and results are bit-identical
    /// for any pool size.
    pub fn forward_with_weight(&mut self, x: &Tensor, weight: &Tensor) -> Tensor {
        let _span = pcount_telemetry::span("conv_fwd");
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv expects NCHW input");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let geom = ConvGeom {
            c,
            h,
            w,
            k: self.kernel,
            stride: self.stride,
            padding: self.padding,
            co: self.out_channels,
            ho: self.output_size(h),
            wo: self.output_size(w),
        };
        let mut out = Tensor::zeros(&[n, geom.co, geom.ho, geom.wo]);
        let xd = x.data();
        let wd = weight.data();
        let bd = self.bias.data();
        let od = out.data_mut();
        let image_len = geom.co * geom.plane();
        let pool = pcount_runtime::current();
        if pool.width() > 1 && n > 1 {
            pool.par_chunks_mut(od, image_len, 0, |ni, dst| {
                WORKER_SCRATCH.with(|s| {
                    forward_image(
                        &mut s.borrow_mut(),
                        geom,
                        &xd[ni * geom.chw()..],
                        wd,
                        bd,
                        dst,
                    );
                });
            });
        } else {
            for (ni, dst) in od.chunks_mut(image_len).enumerate() {
                forward_image(&mut self.scratch, geom, &xd[ni * geom.chw()..], wd, bd, dst);
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    /// Reference forward pass: the original 7-deep nested loops. Kept for
    /// the GEMM-equivalence tests and the `train_throughput` bench; not
    /// used by the training stack.
    pub fn forward_naive_with_weight(&mut self, x: &Tensor, weight: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "conv expects NCHW input");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let ho = self.output_size(h);
        let wo = self.output_size(w);
        let mut out = Tensor::zeros(&[n, self.out_channels, ho, wo]);
        let xd = x.data();
        let wd = weight.data();
        let bd = self.bias.data();
        let od = out.data_mut();
        let k = self.kernel;
        for ni in 0..n {
            #[allow(clippy::needless_range_loop)]
            for co in 0..self.out_channels {
                let wbase_co = co * self.in_channels * k * k;
                let obase = (ni * self.out_channels + co) * ho * wo;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut acc = bd[co];
                        for ci in 0..self.in_channels {
                            let ibase = (ni * c + ci) * h * w;
                            let wbase = wbase_co + ci * k * k;
                            for ky in 0..k {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * self.stride + kx) as isize - self.padding as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += xd[ibase + iy as usize * w + ix as usize]
                                        * wd[wbase + ky * k + kx];
                                }
                            }
                        }
                        od[obase + oy * wo + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    /// Backward pass using an externally supplied effective weight tensor;
    /// accumulates into `weight_grad`/`bias_grad` and returns the input
    /// gradient.
    ///
    /// Both gradients are GEMMs over the packed column matrix of the
    /// cached input: `dW_n = dY_n · col_nᵀ` and `dcol = Wᵀ · dY_n`
    /// followed by a [`col2im`] scatter-add. Every image's partial
    /// gradients are computed independently (fanned out over the
    /// persistent `pcount-runtime` pool, staging buffers hoisted into the
    /// caller-owned [`GemmScratch`] arena so the grad path performs no
    /// steady-state allocation) and reduced into
    /// `weight_grad`/`bias_grad` in image order on the calling thread —
    /// the reduction order is a function of the batch alone, so results
    /// are bit-identical for any pool size.
    pub fn backward_with_weight(&mut self, grad_out: &Tensor, weight: &Tensor) -> Tensor {
        let _span = pcount_telemetry::span("conv_bwd");
        let x = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let xs = x.shape();
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        let gs = grad_out.shape();
        assert_eq!(gs[1], self.out_channels, "grad channel mismatch");
        let geom = ConvGeom {
            c,
            h,
            w,
            k: self.kernel,
            stride: self.stride,
            padding: self.padding,
            co: self.out_channels,
            ho: gs[2],
            wo: gs[3],
        };
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let xd = x.data();
        let wd = weight.data();
        let gd = grad_out.data();
        let gi = grad_in.data_mut();
        let wsize = geom.co * geom.ckk();
        // Per-image gradient partials live in the caller-owned arena;
        // they grow to the workload's high-water mark once and are
        // reused for every subsequent step.
        let mut dw = self.scratch.take_aux();
        sized(&mut dw, n * wsize);
        let mut db = self.scratch.take_aux();
        sized(&mut db, n * geom.co);
        let pool = pcount_runtime::current();
        if pool.width() > 1 && n > 1 {
            let dw_ptr = SendPtr::new(dw.as_mut_ptr());
            let db_ptr = SendPtr::new(db.as_mut_ptr());
            pool.par_chunks_mut(gi, geom.chw(), 0, |ni, grad_img| {
                // SAFETY: each image index is claimed exactly once, so
                // the `[ni * len, (ni + 1) * len)` partial regions have a
                // single writer.
                let (dw_n, db_n) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(dw_ptr.ptr().add(ni * wsize), wsize),
                        std::slice::from_raw_parts_mut(db_ptr.ptr().add(ni * geom.co), geom.co),
                    )
                };
                WORKER_SCRATCH.with(|s| {
                    backward_image(
                        &mut s.borrow_mut(),
                        geom,
                        &xd[ni * geom.chw()..],
                        wd,
                        &gd[ni * geom.co * geom.plane()..],
                        grad_img,
                        dw_n,
                        db_n,
                    );
                });
            });
        } else {
            for (ni, grad_img) in gi.chunks_mut(geom.chw()).enumerate() {
                let (dw_n, db_n) = (
                    &mut dw[ni * wsize..(ni + 1) * wsize],
                    &mut db[ni * geom.co..(ni + 1) * geom.co],
                );
                backward_image(
                    &mut self.scratch,
                    geom,
                    &xd[ni * geom.chw()..],
                    wd,
                    &gd[ni * geom.co * geom.plane()..],
                    grad_img,
                    dw_n,
                    db_n,
                );
            }
        }
        // Canonical-order reduction: image partials land in batch order
        // regardless of which worker computed them, matching the
        // historical serial accumulation exactly for the k-blocking in
        // use (`Ho*Wo <= KC`, one k block per image).
        let wg = self.weight_grad.data_mut();
        for dw_n in dw.chunks_exact(wsize) {
            for (acc, &v) in wg.iter_mut().zip(dw_n.iter()) {
                *acc += v;
            }
        }
        let bg = self.bias_grad.data_mut();
        for db_n in db.chunks_exact(geom.co) {
            for (acc, &v) in bg.iter_mut().zip(db_n.iter()) {
                *acc += v;
            }
        }
        self.scratch.give_aux(db);
        self.scratch.give_aux(dw);
        grad_in
    }

    /// Reference backward pass mirroring
    /// [`Conv2d::forward_naive_with_weight`]; accumulates into
    /// `weight_grad`/`bias_grad` and returns the input gradient.
    pub fn backward_naive_with_weight(&mut self, grad_out: &Tensor, weight: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let xs = x.shape();
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        let gs = grad_out.shape();
        let (ho, wo) = (gs[2], gs[3]);
        assert_eq!(gs[1], self.out_channels, "grad channel mismatch");
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let k = self.kernel;
        let xd = x.data();
        let wd = weight.data();
        let gd = grad_out.data();
        {
            let wg = self.weight_grad.data_mut();
            let bg = self.bias_grad.data_mut();
            let gi = grad_in.data_mut();
            for ni in 0..n {
                #[allow(clippy::needless_range_loop)]
                for co in 0..self.out_channels {
                    let wbase_co = co * self.in_channels * k * k;
                    let obase = (ni * self.out_channels + co) * ho * wo;
                    for oy in 0..ho {
                        for ox in 0..wo {
                            let g = gd[obase + oy * wo + ox];
                            if g == 0.0 {
                                continue;
                            }
                            bg[co] += g;
                            for ci in 0..self.in_channels {
                                let ibase = (ni * c + ci) * h * w;
                                let wbase = wbase_co + ci * k * k;
                                for ky in 0..k {
                                    let iy =
                                        (oy * self.stride + ky) as isize - self.padding as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..k {
                                        let ix = (ox * self.stride + kx) as isize
                                            - self.padding as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let xi = ibase + iy as usize * w + ix as usize;
                                        let wi = wbase + ky * k + kx;
                                        wg[wi] += g * xd[xi];
                                        gi[xi] += g * wd[wi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let weight = self.weight.clone();
        self.forward_with_weight(x, &weight)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let weight = self.weight.clone();
        self.backward_with_weight(grad_out, &weight)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.weight_grad),
            (&mut self.bias, &mut self.bias_grad),
        ]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check(
        conv: &mut Conv2d,
        x: &Tensor,
        loss: impl Fn(&Tensor) -> f32,
        grad_loss: impl Fn(&Tensor) -> Tensor,
    ) {
        // Analytical gradients.
        conv.zero_grad();
        let y = conv.forward(x, Mode::Train);
        let gy = grad_loss(&y);
        let gx = conv.backward(&gy);
        // Numerical gradient for a handful of input entries.
        let eps = 1e-3;
        for idx in [0usize, 7, 19, 33] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = loss(&conv.forward(&xp, Mode::Train));
            let lm = loss(&conv.forward(&xm, Mode::Train));
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "input grad mismatch at {idx}: num {num} vs ana {ana}"
            );
        }
        // Numerical gradient for a handful of weights.
        let mut conv2 = conv.clone();
        for idx in [0usize, 5, 11] {
            let orig = conv2.weight.data()[idx];
            conv2.weight.data_mut()[idx] = orig + eps;
            let lp = loss(&conv2.forward(x, Mode::Train));
            conv2.weight.data_mut()[idx] = orig - eps;
            let lm = loss(&conv2.forward(x, Mode::Train));
            conv2.weight.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.weight_grad.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "weight grad mismatch at {idx}: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.fill(1.0);
        conv.bias.fill(0.0);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward(&x, Mode::Eval);
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let y = conv.forward(&Tensor::ones(&[2, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[2, 3, 8, 8]);
    }

    #[test]
    fn stride_two_halves_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 3, 2, 1, &mut rng);
        let y = conv.forward(&Tensor::ones(&[1, 1, 8, 8]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng);
        conv.weight.fill(0.0);
        conv.bias = Tensor::from_vec(vec![1.5, -2.0], &[2]);
        let y = conv.forward(&Tensor::ones(&[1, 1, 2, 2]), Mode::Eval);
        assert!(y.data()[..4].iter().all(|&v| (v - 1.5).abs() < 1e-6));
        assert!(y.data()[4..].iter().all(|&v| (v + 2.0).abs() < 1e-6));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        // Loss = sum of squares / 2, so dL/dy = y.
        finite_diff_check(&mut conv, &x, |y| 0.5 * y.sq_norm(), |y| y.clone());
    }

    #[test]
    fn from_parts_validates_shapes() {
        let w = Tensor::zeros(&[4, 2, 3, 3]);
        let b = Tensor::zeros(&[4]);
        let conv = Conv2d::from_parts(w, b, 1, 1);
        assert_eq!(conv.out_channels, 4);
        assert_eq!(conv.in_channels, 2);
        assert_eq!(conv.kernel, 3);
    }
}
