//! Fully connected (linear) layer.

use crate::layer::{Layer, Mode};
use pcount_tensor::Tensor;
use rand::Rng;

/// A fully connected layer computing `y = x W^T + b`.
///
/// Weight layout is `[out_features, in_features]`, matching the convention
/// of the convolution layer (output dimension first) so that the NAS channel
/// masks and the quantizer treat both uniformly.
///
/// # Example
///
/// ```
/// use pcount_nn::{Layer, Linear, Mode};
/// use pcount_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(16, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[3, 16]), Mode::Eval);
/// assert_eq!(y.shape(), &[3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Weights `[out, in]`.
    pub weight: Tensor,
    /// Bias `[out]`.
    pub bias: Tensor,
    /// Accumulated weight gradient.
    pub weight_grad: Tensor,
    /// Accumulated bias gradient.
    pub bias_grad: Tensor,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with He-style initialisation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let std = (2.0 / in_features as f32).sqrt();
        Self {
            in_features,
            out_features,
            weight: Tensor::randn(&[out_features, in_features], std, rng),
            bias: Tensor::zeros(&[out_features]),
            weight_grad: Tensor::zeros(&[out_features, in_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Creates a linear layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        let shape = weight.shape().to_vec();
        assert_eq!(shape.len(), 2, "linear weight must be [out, in]");
        assert_eq!(bias.shape(), &[shape[0]], "bias must match out features");
        Self {
            out_features: shape[0],
            in_features: shape[1],
            weight_grad: Tensor::zeros(&shape),
            bias_grad: Tensor::zeros(&[shape[0]]),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Forward pass with an externally supplied effective weight tensor
    /// (used by the NAS masked layers).
    pub fn forward_with_weight(&mut self, x: &Tensor, weight: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects [N, in] input");
        assert_eq!(x.shape()[1], self.in_features, "linear input size mismatch");
        self.cached_input = Some(x.clone());
        x.matmul(&weight.transpose()).add_row_bias(&self.bias)
    }

    /// Backward pass with an externally supplied effective weight tensor.
    pub fn backward_with_weight(&mut self, grad_out: &Tensor, weight: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = dY^T X, db = column sums of dY, dX = dY W.
        let dw = grad_out.transpose().matmul(x);
        self.weight_grad.axpy(1.0, &dw);
        let n = grad_out.shape()[0];
        let c = grad_out.shape()[1];
        {
            let bg = self.bias_grad.data_mut();
            let gd = grad_out.data();
            for i in 0..n {
                for j in 0..c {
                    bg[j] += gd[i * c + j];
                }
            }
        }
        grad_out.matmul(weight)
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let weight = self.weight.clone();
        self.forward_with_weight(x, &weight)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let weight = self.weight.clone();
        self.backward_with_weight(grad_out, &weight)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.weight_grad),
            (&mut self.bias, &mut self.bias_grad),
        ]
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut fc = Linear::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]);
        let y = fc.forward(&x, Mode::Eval);
        // Row 0: 1*1 + 0*2 + (-1)*3 + 0.5 = -1.5 ; Row 1: 4 - 6 - 0.5 = -2.5
        assert!(y.approx_eq(&Tensor::from_vec(vec![-1.5, -2.5], &[1, 2]), 1e-6));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut fc = Linear::new(6, 3, &mut rng);
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        fc.zero_grad();
        let y = fc.forward(&x, Mode::Train);
        let gx = fc.backward(&y); // dL/dy = y  =>  L = 0.5 ||y||^2
        let eps = 1e-3;
        for idx in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = 0.5 * fc.forward(&xp, Mode::Train).sq_norm();
            let lm = 0.5 * fc.forward(&xm, Mode::Train).sq_norm();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 1e-2);
        }
        for idx in [0usize, 7, 17] {
            let orig = fc.weight.data()[idx];
            fc.weight.data_mut()[idx] = orig + eps;
            let lp = 0.5 * fc.forward(&x, Mode::Train).sq_norm();
            fc.weight.data_mut()[idx] = orig - eps;
            let lm = 0.5 * fc.forward(&x, Mode::Train).sq_norm();
            fc.weight.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - fc.weight_grad.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.zero_grad();
        let x = Tensor::ones(&[3, 2]);
        let _ = fc.forward(&x, Mode::Train);
        let _ = fc.backward(&Tensor::ones(&[3, 2]));
        assert!(fc
            .bias_grad
            .approx_eq(&Tensor::from_vec(vec![3.0, 3.0], &[2]), 1e-6));
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fc = Linear::new(10, 4, &mut rng);
        assert_eq!(fc.num_params(), 44);
    }
}
