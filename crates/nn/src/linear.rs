//! Fully connected (linear) layer.

use crate::layer::{Layer, Mode};
use pcount_tensor::{gemm, GemmScratch, Tensor};
use rand::Rng;

/// A fully connected layer computing `y = x W^T + b`.
///
/// Weight layout is `[out_features, in_features]`, matching the convention
/// of the convolution layer (output dimension first) so that the NAS channel
/// masks and the quantizer treat both uniformly. Forward and both backward
/// products run on the cache-blocked [`gemm`] engine (the transposed
/// operands are free — packing reads through strides), with the weight
/// gradient accumulated directly into `weight_grad`, so no intermediate
/// tensors are allocated. [`Linear::forward_naive_with_weight`] /
/// [`Linear::backward_naive_with_weight`] keep the plain triple-loop
/// reference for the equivalence tests.
///
/// # Example
///
/// ```
/// use pcount_nn::{Layer, Linear, Mode};
/// use pcount_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(16, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[3, 16]), Mode::Eval);
/// assert_eq!(y.shape(), &[3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// Weights `[out, in]`.
    pub weight: Tensor,
    /// Bias `[out]`.
    pub bias: Tensor,
    /// Accumulated weight gradient.
    pub weight_grad: Tensor,
    /// Accumulated bias gradient.
    pub bias_grad: Tensor,
    cached_input: Option<Tensor>,
    scratch: GemmScratch,
}

impl Linear {
    /// Creates a linear layer with He-style initialisation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0);
        let std = (2.0 / in_features as f32).sqrt();
        Self {
            in_features,
            out_features,
            weight: Tensor::randn(&[out_features, in_features], std, rng),
            bias: Tensor::zeros(&[out_features]),
            weight_grad: Tensor::zeros(&[out_features, in_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            cached_input: None,
            scratch: GemmScratch::default(),
        }
    }

    /// Creates a linear layer from explicit weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn from_parts(weight: Tensor, bias: Tensor) -> Self {
        let shape = weight.shape().to_vec();
        assert_eq!(shape.len(), 2, "linear weight must be [out, in]");
        assert_eq!(bias.shape(), &[shape[0]], "bias must match out features");
        Self {
            out_features: shape[0],
            in_features: shape[1],
            weight_grad: Tensor::zeros(&shape),
            bias_grad: Tensor::zeros(&[shape[0]]),
            weight,
            bias,
            cached_input: None,
            scratch: GemmScratch::default(),
        }
    }

    /// Forward pass with an externally supplied effective weight tensor
    /// (used by the QAT fake-quantised weights and the NAS masked-layer
    /// path): one `y = x · Wᵀ` GEMM plus a fused bias add.
    pub fn forward_with_weight(&mut self, x: &Tensor, weight: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects [N, in] input");
        assert_eq!(x.shape()[1], self.in_features, "linear input size mismatch");
        let n = x.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        gemm(
            &mut self.scratch,
            false,
            true,
            n,
            self.out_features,
            self.in_features,
            x.data(),
            weight.data(),
            out.data_mut(),
            false,
        );
        let bd = self.bias.data();
        for row in out.data_mut().chunks_exact_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(bd.iter()) {
                *v += b;
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    /// Backward pass with an externally supplied effective weight tensor.
    ///
    /// `dW += dYᵀ · X` accumulates straight into `weight_grad` (no
    /// intermediate), `db` is the column sums of `dY`, and `dX = dY · W`.
    pub fn backward_with_weight(&mut self, grad_out: &Tensor, weight: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let n = grad_out.shape()[0];
        let c = grad_out.shape()[1];
        assert_eq!(c, self.out_features, "linear gradient size mismatch");
        gemm(
            &mut self.scratch,
            true,
            false,
            self.out_features,
            self.in_features,
            n,
            grad_out.data(),
            x.data(),
            self.weight_grad.data_mut(),
            true,
        );
        {
            let bg = self.bias_grad.data_mut();
            for row in grad_out.data().chunks_exact(c) {
                for (b, &g) in bg.iter_mut().zip(row.iter()) {
                    *b += g;
                }
            }
        }
        let mut grad_in = Tensor::zeros(&[n, self.in_features]);
        gemm(
            &mut self.scratch,
            false,
            false,
            n,
            self.in_features,
            self.out_features,
            grad_out.data(),
            weight.data(),
            grad_in.data_mut(),
            false,
        );
        grad_in
    }

    /// Reference forward pass: plain triple loop over `y = x Wᵀ + b`. Kept
    /// for the GEMM-equivalence tests; not used by the training stack.
    pub fn forward_naive_with_weight(&mut self, x: &Tensor, weight: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 2, "linear expects [N, in] input");
        assert_eq!(x.shape()[1], self.in_features, "linear input size mismatch");
        let n = x.shape()[0];
        let (xd, wd, bd) = (x.data(), weight.data(), self.bias.data());
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let od = out.data_mut();
        for i in 0..n {
            for o in 0..self.out_features {
                let mut acc = bd[o];
                for p in 0..self.in_features {
                    acc += xd[i * self.in_features + p] * wd[o * self.in_features + p];
                }
                od[i * self.out_features + o] = acc;
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    /// Reference backward pass mirroring
    /// [`Linear::forward_naive_with_weight`].
    pub fn backward_naive_with_weight(&mut self, grad_out: &Tensor, weight: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called before forward");
        let n = grad_out.shape()[0];
        let c = grad_out.shape()[1];
        assert_eq!(c, self.out_features, "linear gradient size mismatch");
        let (xd, wd, gd) = (x.data(), weight.data(), grad_out.data());
        {
            let wg = self.weight_grad.data_mut();
            let bg = self.bias_grad.data_mut();
            for i in 0..n {
                for o in 0..c {
                    let g = gd[i * c + o];
                    bg[o] += g;
                    for p in 0..self.in_features {
                        wg[o * self.in_features + p] += g * xd[i * self.in_features + p];
                    }
                }
            }
        }
        let mut grad_in = Tensor::zeros(&[n, self.in_features]);
        let gi = grad_in.data_mut();
        for i in 0..n {
            for o in 0..c {
                let g = gd[i * c + o];
                for p in 0..self.in_features {
                    gi[i * self.in_features + p] += g * wd[o * self.in_features + p];
                }
            }
        }
        grad_in
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let weight = self.weight.clone();
        self.forward_with_weight(x, &weight)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let weight = self.weight.clone();
        self.backward_with_weight(grad_out, &weight)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.weight_grad),
            (&mut self.bias, &mut self.bias_grad),
        ]
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let mut fc = Linear::from_parts(w, b);
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]);
        let y = fc.forward(&x, Mode::Eval);
        // Row 0: 1*1 + 0*2 + (-1)*3 + 0.5 = -1.5 ; Row 1: 4 - 6 - 0.5 = -2.5
        assert!(y.approx_eq(&Tensor::from_vec(vec![-1.5, -2.5], &[1, 2]), 1e-6));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut fc = Linear::new(6, 3, &mut rng);
        let x = Tensor::randn(&[4, 6], 1.0, &mut rng);
        fc.zero_grad();
        let y = fc.forward(&x, Mode::Train);
        let gx = fc.backward(&y); // dL/dy = y  =>  L = 0.5 ||y||^2
        let eps = 1e-3;
        for idx in [0usize, 5, 13, 23] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = 0.5 * fc.forward(&xp, Mode::Train).sq_norm();
            let lm = 0.5 * fc.forward(&xm, Mode::Train).sq_norm();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[idx]).abs() < 1e-2);
        }
        for idx in [0usize, 7, 17] {
            let orig = fc.weight.data()[idx];
            fc.weight.data_mut()[idx] = orig + eps;
            let lp = 0.5 * fc.forward(&x, Mode::Train).sq_norm();
            fc.weight.data_mut()[idx] = orig - eps;
            let lm = 0.5 * fc.forward(&x, Mode::Train).sq_norm();
            fc.weight.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - fc.weight_grad.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.zero_grad();
        let x = Tensor::ones(&[3, 2]);
        let _ = fc.forward(&x, Mode::Train);
        let _ = fc.backward(&Tensor::ones(&[3, 2]));
        assert!(fc
            .bias_grad
            .approx_eq(&Tensor::from_vec(vec![3.0, 3.0], &[2]), 1e-6));
    }

    #[test]
    fn num_params_counts_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut fc = Linear::new(10, 4, &mut rng);
        assert_eq!(fc.num_params(), 44);
    }
}
