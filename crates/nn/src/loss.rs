//! Cross-entropy classification loss.

use pcount_tensor::Tensor;

/// Softmax cross-entropy loss over integer class targets.
///
/// # Example
///
/// ```
/// use pcount_nn::CrossEntropyLoss;
/// use pcount_tensor::Tensor;
/// let mut ce = CrossEntropyLoss::new();
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0], &[1, 4]);
/// let loss = ce.forward(&logits, &[0]);
/// assert!(loss < 0.7); // confident and correct
/// ```
#[derive(Debug, Default, Clone)]
pub struct CrossEntropyLoss {
    cached_probs: Option<Tensor>,
    cached_targets: Option<Vec<usize>>,
}

impl CrossEntropyLoss {
    /// Creates a new loss object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the mean cross-entropy of `logits` (`[N, C]`) against
    /// integer `targets` (length `N`), caching softmax probabilities for
    /// [`CrossEntropyLoss::backward`].
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or a target is out of range.
    pub fn forward(&mut self, logits: &Tensor, targets: &[usize]) -> f32 {
        assert_eq!(logits.shape().len(), 2, "logits must be [N, C]");
        let (n, c) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(n, targets.len(), "batch size mismatch");
        let mut probs = Tensor::zeros(&[n, c]);
        let ld = logits.data();
        let pd = probs.data_mut();
        let mut loss = 0.0f32;
        for i in 0..n {
            assert!(targets[i] < c, "target {} out of range", targets[i]);
            let row = &ld[i * c..(i + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for j in 0..c {
                let e = (row[j] - max).exp();
                pd[i * c + j] = e;
                denom += e;
            }
            for j in 0..c {
                pd[i * c + j] /= denom;
            }
            loss -= pd[i * c + targets[i]].max(1e-12).ln();
        }
        self.cached_probs = Some(probs);
        self.cached_targets = Some(targets.to_vec());
        loss / n as f32
    }

    /// Gradient of the mean loss with respect to the logits.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CrossEntropyLoss::forward`].
    pub fn backward(&self) -> Tensor {
        let probs = self
            .cached_probs
            .as_ref()
            .expect("backward called before forward");
        let targets = self.cached_targets.as_ref().expect("missing targets");
        let (n, c) = (probs.shape()[0], probs.shape()[1]);
        let mut grad = probs.clone();
        let gd = grad.data_mut();
        for (i, &t) in targets.iter().enumerate() {
            gd[i * c + t] -= 1.0;
        }
        grad.scale(1.0 / n as f32)
    }

    /// Softmax probabilities from the last forward pass, if any.
    pub fn probabilities(&self) -> Option<&Tensor> {
        self.cached_probs.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[3, 4]);
        let loss = ce.forward(&logits, &[0, 1, 2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 0.0], &[1, 4]);
        assert!(ce.forward(&logits, &[0]) < 1e-3);
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 0.0], &[1, 4]);
        assert!(ce.forward(&logits, &[3]) > 5.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -1.0, 0.5, 2.0], &[2, 4]);
        let targets = [2usize, 3usize];
        let _ = ce.forward(&logits, &targets);
        let grad = ce.backward();
        let eps = 1e-3;
        for idx in 0..8 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let mut ce2 = CrossEntropyLoss::new();
            let fp = ce2.forward(&lp, &targets);
            let fm = ce2.forward(&lm, &targets);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4], &[1, 4]);
        let _ = ce.forward(&logits, &[1]);
        let grad = ce.backward();
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let mut ce = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[1, 4]);
        let _ = ce.forward(&logits, &[4]);
    }
}
