//! Classification metrics used throughout the flow.

/// Confusion matrix `[true][predicted]` for `num_classes` classes.
///
/// # Panics
///
/// Panics if `predictions` and `targets` have different lengths or contain
/// values `>= num_classes`.
///
/// # Example
///
/// ```
/// let cm = pcount_nn::confusion_matrix(&[0, 1, 1], &[0, 1, 0], 2);
/// assert_eq!(cm[0][0], 1);
/// assert_eq!(cm[0][1], 1);
/// assert_eq!(cm[1][1], 1);
/// ```
pub fn confusion_matrix(
    predictions: &[usize],
    targets: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    let mut cm = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in predictions.iter().zip(targets.iter()) {
        assert!(p < num_classes, "prediction {p} out of range");
        assert!(t < num_classes, "target {t} out of range");
        cm[t][p] += 1;
    }
    cm
}

/// Plain accuracy in `[0, 1]`. Returns 0 for empty inputs.
pub fn accuracy(predictions: &[usize], targets: &[usize]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / targets.len() as f64
}

/// Balanced Accuracy Score: the unweighted mean of per-class recall, the
/// metric reported by the paper. Classes that do not appear in `targets`
/// are excluded from the average.
///
/// # Example
///
/// ```
/// // Class 0 recall 1.0, class 1 recall 0.5 -> BAS 0.75
/// let bas = pcount_nn::balanced_accuracy(&[0, 1, 0], &[0, 1, 1], 2);
/// assert!((bas - 0.75).abs() < 1e-9);
/// ```
pub fn balanced_accuracy(predictions: &[usize], targets: &[usize], num_classes: usize) -> f64 {
    let cm = confusion_matrix(predictions, targets, num_classes);
    let mut recalls = Vec::new();
    for (t, row) in cm.iter().enumerate() {
        let total: usize = row.iter().sum();
        if total > 0 {
            recalls.push(row[t] as f64 / total as f64);
        }
    }
    if recalls.is_empty() {
        0.0
    } else {
        recalls.iter().sum::<f64>() / recalls.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_score_one() {
        let t = vec![0, 1, 2, 3, 0, 1];
        assert_eq!(accuracy(&t, &t), 1.0);
        assert_eq!(balanced_accuracy(&t, &t, 4), 1.0);
    }

    #[test]
    fn balanced_accuracy_ignores_absent_classes() {
        // Only classes 0 and 1 present; class 2/3 never appear as targets.
        let preds = vec![0, 0, 1, 1];
        let targets = vec![0, 0, 1, 0];
        let bas = balanced_accuracy(&preds, &targets, 4);
        // class 0 recall = 2/3, class 1 recall = 1.0
        assert!((bas - (2.0 / 3.0 + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_accuracy_penalises_majority_class_bias() {
        // 90 samples of class 0, 10 of class 1, predictor always says 0.
        let mut targets = vec![0usize; 90];
        targets.extend(vec![1usize; 10]);
        let preds = vec![0usize; 100];
        assert!((accuracy(&preds, &targets) - 0.9).abs() < 1e-9);
        assert!((balanced_accuracy(&preds, &targets, 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn confusion_matrix_counts_everything() {
        let cm = confusion_matrix(&[0, 1, 2, 2], &[0, 2, 2, 1], 3);
        let total: usize = cm.iter().flat_map(|r| r.iter()).sum();
        assert_eq!(total, 4);
        assert_eq!(cm[2][1], 1);
        assert_eq!(cm[2][2], 1);
        assert_eq!(cm[1][2], 1);
    }

    #[test]
    fn empty_inputs_return_zero() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(balanced_accuracy(&[], &[], 4), 0.0);
    }

    proptest! {
        #[test]
        fn accuracy_and_bas_are_probabilities(
            seq in proptest::collection::vec((0usize..4, 0usize..4), 1..200)
        ) {
            let preds: Vec<usize> = seq.iter().map(|(p, _)| *p).collect();
            let targets: Vec<usize> = seq.iter().map(|(_, t)| *t).collect();
            let acc = accuracy(&preds, &targets);
            let bas = balanced_accuracy(&preds, &targets, 4);
            prop_assert!((0.0..=1.0).contains(&acc));
            prop_assert!((0.0..=1.0).contains(&bas));
        }

        #[test]
        fn confusion_matrix_row_sums_match_class_counts(
            seq in proptest::collection::vec((0usize..4, 0usize..4), 1..100)
        ) {
            let preds: Vec<usize> = seq.iter().map(|(p, _)| *p).collect();
            let targets: Vec<usize> = seq.iter().map(|(_, t)| *t).collect();
            let cm = confusion_matrix(&preds, &targets, 4);
            for (class, row) in cm.iter().enumerate() {
                let expected = targets.iter().filter(|&&t| t == class).count();
                let row_sum: usize = row.iter().sum();
                prop_assert_eq!(expected, row_sum);
            }
        }
    }
}
