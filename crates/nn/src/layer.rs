//! The [`Layer`] trait, simple stateless layers and the [`Sequential`]
//! container.

use pcount_tensor::Tensor;

/// Whether a forward pass is part of training or of evaluation.
///
/// Batch normalisation and the fake-quantisation layers in `pcount-quant`
/// change behaviour between the two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training mode: batch statistics are used and updated.
    Train,
    /// Evaluation mode: running statistics are used.
    Eval,
}

/// A differentiable network layer with manually implemented backward pass.
///
/// Layers cache whatever they need during [`Layer::forward`] so that
/// [`Layer::backward`] can compute input gradients and accumulate parameter
/// gradients. Gradients are accumulated (`+=`) so call
/// [`Layer::zero_grad`] (usually through [`Sequential::zero_grad`]) between
/// optimisation steps.
///
/// Layers are `Send + Sync` plain data, so whole networks can be cloned
/// into worker threads — the parallel per-fold training in `pcount-core`
/// clones one [`Sequential`] per cross-validation fold.
pub trait Layer: Send + Sync {
    /// Computes the layer output for `x`.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Back-propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) and returns the gradient w.r.t. this layer's input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`Layer::forward`].
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Returns mutable (parameter, gradient) pairs in a stable order.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        for (_, g) in self.params_and_grads() {
            g.fill(0.0);
        }
    }

    /// Number of trainable parameters.
    fn num_params(&mut self) -> usize {
        self.params_and_grads().iter().map(|(p, _)| p.numel()).sum()
    }

    /// Short human-readable layer name (e.g. `"conv2d"`).
    fn name(&self) -> &'static str;

    /// The layer as [`std::any::Any`], enabling downcasts to the concrete
    /// layer type (used by the quantisation flow to fold batch-norm layers
    /// of a [`Sequential`] into their preceding convolutions).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Clones the layer behind a fresh box (object-safe `Clone`), so
    /// containers of boxed layers — and whole networks — can be cloned.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Rectified linear unit.
///
/// # Example
///
/// ```
/// use pcount_nn::{Layer, Mode, Relu};
/// use pcount_tensor::Tensor;
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]), Mode::Eval);
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        assert_eq!(mask.len(), grad_out.numel(), "relu gradient size mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens an NCHW tensor into `[N, C*H*W]`.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let shape = x.shape().to_vec();
        assert!(!shape.is_empty(), "flatten input must have rank >= 1");
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.input_shape = Some(shape);
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("backward called before forward");
        grad_out.reshape(shape)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 2-D max pooling over NCHW tensors.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given square kernel and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be > 0");
        Self {
            kernel,
            stride,
            argmax: None,
            input_shape: None,
        }
    }

    /// Output spatial size for an input spatial size.
    pub fn output_size(&self, input: usize) -> usize {
        if input < self.kernel {
            0
        } else {
            (input - self.kernel) / self.stride + 1
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "maxpool expects NCHW input");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let ho = self.output_size(h);
        let wo = self.output_size(w);
        let mut out = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax = vec![0usize; n * c * ho * wo];
        let xd = x.data();
        let od = out.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let base_in = (ni * c + ci) * h * w;
                let base_out = (ni * c + ci) * ho * wo;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                let idx = base_in + iy * w + ix;
                                if xd[idx] > best {
                                    best = xd[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        od[base_out + oy * wo + ox] = best;
                        argmax[base_out + oy * wo + ox] = best_idx;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.input_shape = Some(shape.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let input_shape = self.input_shape.as_ref().expect("backward before forward");
        let mut grad_in = Tensor::zeros(input_shape);
        let gd = grad_out.data();
        assert_eq!(gd.len(), argmax.len(), "maxpool gradient size mismatch");
        let gi = grad_in.data_mut();
        for (g, &idx) in gd.iter().zip(argmax.iter()) {
            gi[idx] += g;
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A plain feed-forward stack of boxed layers.
///
/// # Example
///
/// ```
/// use pcount_nn::{Flatten, Mode, Relu, Sequential};
/// use pcount_tensor::Tensor;
/// let mut net = Sequential::new(vec![Box::new(Relu::new()), Box::new(Flatten::new())]);
/// let y = net.forward(&Tensor::ones(&[2, 3, 2, 2]), Mode::Eval);
/// assert_eq!(y.shape(), &[2, 12]);
/// ```
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a container from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Creates an empty container.
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Forward pass through all layers in order.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    /// Backward pass through all layers in reverse order.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    /// Collects (parameter, gradient) pairs from every layer in order.
    pub fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .collect()
    }

    /// Resets gradients of every layer.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable parameters.
    pub fn num_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.num_params()).sum()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_masks_negative_gradients() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]);
        let y = relu.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Tensor::ones(&[5]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_round_trips_gradients() {
        let mut fl = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = fl.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 48]);
        let g = fl.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn maxpool_picks_maximum_and_routes_gradient() {
        let mut pool = MaxPool2d::new(2, 2);
        // A single 1x1x4x4 image with a known maximum per window.
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
        let g = pool.backward(&Tensor::ones(&[1, 1, 2, 2]));
        // Each gradient goes only to the argmax location.
        assert_eq!(g.data().iter().filter(|&&v| v == 1.0).count(), 4);
        assert_eq!(g.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.at(&[0, 0, 3, 3]), 1.0);
    }

    #[test]
    fn maxpool_output_size_handles_small_inputs() {
        let pool = MaxPool2d::new(2, 2);
        assert_eq!(pool.output_size(8), 4);
        assert_eq!(pool.output_size(1), 0);
    }

    #[test]
    fn sequential_chains_layers() {
        let mut net = Sequential::new(vec![Box::new(Relu::new()), Box::new(Flatten::new())]);
        assert_eq!(net.len(), 2);
        let y = net.forward(&Tensor::full(&[1, 2, 2, 2], -1.0), Mode::Train);
        assert_eq!(y.shape(), &[1, 8]);
        assert!(y.data().iter().all(|&v| v == 0.0));
        let g = net.backward(&Tensor::ones(&[1, 8]));
        assert_eq!(g.shape(), &[1, 2, 2, 2]);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }
}
