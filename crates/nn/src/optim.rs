//! Gradient-descent optimisers.

use pcount_tensor::Tensor;

/// A first-order optimiser updating parameters in place from their
/// accumulated gradients.
///
/// The parameter list must be presented in the same order on every call —
/// [`crate::Sequential::params_and_grads`] guarantees this for a fixed
/// network structure.
pub trait Optimizer {
    /// Applies one update step to `(parameter, gradient)` pairs.
    fn step(&mut self, params_and_grads: Vec<(&mut Tensor, &mut Tensor)>);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// # Example
///
/// ```
/// use pcount_nn::{Optimizer, Sgd};
/// use pcount_tensor::Tensor;
/// let mut p = Tensor::ones(&[2]);
/// let mut g = Tensor::from_vec(vec![1.0, -1.0], &[2]);
/// let mut opt = Sgd::new(0.1, 0.0, 0.0);
/// opt.step(vec![(&mut p, &mut g)]);
/// assert!((p.data()[0] - 0.9).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params_and_grads: Vec<(&mut Tensor, &mut Tensor)>) {
        if self.velocity.len() != params_and_grads.len() {
            self.velocity = params_and_grads
                .iter()
                .map(|(p, _)| vec![0.0f32; p.numel()])
                .collect();
        }
        for (i, (param, grad)) in params_and_grads.into_iter().enumerate() {
            let v = &mut self.velocity[i];
            assert_eq!(v.len(), param.numel(), "parameter {i} changed size");
            let pd = param.data_mut();
            let gd = grad.data();
            for j in 0..pd.len() {
                let g = gd[j] + self.weight_decay * pd[j];
                v[j] = self.momentum * v[j] + g;
                pd[j] -= self.lr * v[j];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimiser (Kingma & Ba), the optimiser used by the paper
/// (learning rate 1e-3, default betas).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimiser with the paper's default hyper-parameters
    /// except for the provided learning rate and weight decay.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params_and_grads: Vec<(&mut Tensor, &mut Tensor)>) {
        if self.m.len() != params_and_grads.len() {
            self.m = params_and_grads
                .iter()
                .map(|(p, _)| vec![0.0f32; p.numel()])
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (param, grad)) in params_and_grads.into_iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            assert_eq!(m.len(), param.numel(), "parameter {i} changed size");
            let pd = param.data_mut();
            let gd = grad.data();
            for j in 0..pd.len() {
                let g = gd[j] + self.weight_decay * pd[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                pd[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 with each optimiser.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = Tensor::from_vec(vec![0.0], &[1]);
        for _ in 0..steps {
            let mut g = Tensor::from_vec(vec![2.0 * (x.data()[0] - 3.0)], &[1]);
            opt.step(vec![(&mut x, &mut g)]);
        }
        x.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let x = minimise(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let x = minimise(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let x = minimise(&mut opt, 500);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut p = Tensor::from_vec(vec![1.0], &[1]);
        let mut g = Tensor::zeros(&[1]);
        for _ in 0..10 {
            opt.step(vec![(&mut p, &mut g)]);
        }
        assert!(p.data()[0] < 1.0);
        assert!(p.data()[0] > 0.0);
    }

    #[test]
    fn learning_rate_accessors_round_trip() {
        let mut opt = Adam::new(0.001, 0.0);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
