//! 2-D batch normalisation.

use crate::layer::{Layer, Mode};
use pcount_tensor::Tensor;

/// Batch normalisation over the channel dimension of NCHW tensors.
///
/// During training the layer normalises with batch statistics and updates
/// exponential running averages; during evaluation it uses the running
/// statistics. `pcount-quant` folds this layer into the preceding
/// convolution before quantisation, exactly as the paper does.
///
/// # Example
///
/// ```
/// use pcount_nn::{BatchNorm2d, Layer, Mode};
/// use pcount_tensor::Tensor;
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::ones(&[2, 3, 4, 4]), Mode::Eval);
/// assert_eq!(y.shape(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Number of channels.
    pub channels: usize,
    /// Scale parameter `gamma`, one per channel.
    pub gamma: Tensor,
    /// Shift parameter `beta`, one per channel.
    pub beta: Tensor,
    /// Gradient of `gamma`.
    pub gamma_grad: Tensor,
    /// Gradient of `beta`.
    pub beta_grad: Tensor,
    /// Running mean used in evaluation mode.
    pub running_mean: Tensor,
    /// Running variance used in evaluation mode.
    pub running_var: Tensor,
    /// Exponential-average momentum for the running statistics.
    pub momentum: f32,
    /// Numerical stabiliser added to the variance.
    pub eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    std_inv: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batchnorm needs at least one channel");
        Self {
            channels,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            gamma_grad: Tensor::zeros(&[channels]),
            beta_grad: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "batchnorm expects NCHW input");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let m = (n * h * w) as f32;
        let xd = x.data();

        let (mean, var) = match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for ci in 0..c {
                    let mut sum = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * h * w;
                        for i in 0..h * w {
                            sum += xd[base + i];
                        }
                    }
                    mean[ci] = sum / m;
                    let mut sq = 0.0;
                    for ni in 0..n {
                        let base = (ni * c + ci) * h * w;
                        for i in 0..h * w {
                            let d = xd[base + i] - mean[ci];
                            sq += d * d;
                        }
                    }
                    var[ci] = sq / m;
                }
                // Update running statistics.
                for ci in 0..c {
                    let rm = self.running_mean.data_mut();
                    rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean[ci];
                }
                for ci in 0..c {
                    let rv = self.running_var.data_mut();
                    rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var[ci];
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            ),
        };

        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(shape);
        let mut out = Tensor::zeros(shape);
        {
            let xh = x_hat.data_mut();
            let od = out.data_mut();
            let g = self.gamma.data();
            let b = self.beta.data();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for i in 0..h * w {
                        let v = (xd[base + i] - mean[ci]) * std_inv[ci];
                        xh[base + i] = v;
                        od[base + i] = g[ci] * v + b[ci];
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                x_hat,
                std_inv,
                input_shape: shape.to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before train forward");
        let shape = &cache.input_shape;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let m = (n * h * w) as f32;
        let gd = grad_out.data();
        let xh = cache.x_hat.data();
        let mut grad_in = Tensor::zeros(shape);

        // Per-channel reductions.
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in 0..h * w {
                    sum_dy[ci] += gd[base + i];
                    sum_dy_xhat[ci] += gd[base + i] * xh[base + i];
                }
            }
        }
        for ci in 0..c {
            self.beta_grad.data_mut()[ci] += sum_dy[ci];
            self.gamma_grad.data_mut()[ci] += sum_dy_xhat[ci];
        }
        let g = self.gamma.data();
        {
            let gi = grad_in.data_mut();
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    let k = g[ci] * cache.std_inv[ci] / m;
                    for i in 0..h * w {
                        gi[base + i] =
                            k * (m * gd[base + i] - sum_dy[ci] - xh[base + i] * sum_dy_xhat[ci]);
                    }
                }
            }
        }
        grad_in
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.gamma_grad),
            (&mut self.beta, &mut self.beta_grad),
        ]
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalised() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], 3.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean should be ~0 and variance ~1.
        let (n, c, h, w) = (4, 3, 5, 5);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for i in 0..h * w {
                    vals.push(y.data()[(ni * c + ci) * h * w + i]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean = Tensor::from_vec(vec![2.0], &[1]);
        bn.running_var = Tensor::from_vec(vec![4.0], &[1]);
        let x = Tensor::full(&[1, 1, 2, 2], 4.0);
        let y = bn.forward(&x, Mode::Eval);
        // (4 - 2) / 2 = 1.0
        assert!(y.approx_eq(&Tensor::ones(&[1, 1, 2, 2]), 1e-3));
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma = Tensor::from_vec(vec![3.0], &[1]);
        bn.beta = Tensor::from_vec(vec![-1.0], &[1]);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let y = bn.forward(&x, Mode::Train);
        // Normalised values are symmetric around 0, scaled by 3, shifted by -1.
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean + 1.0).abs() < 1e-4);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = Tensor::from_vec(vec![1.5, 0.5], &[2]);
        bn.beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        bn.zero_grad();
        let y = bn.forward(&x, Mode::Train);
        let gx = bn.backward(&y); // L = 0.5 ||y||^2
        let eps = 1e-3;
        for idx in [0usize, 3, 10, 20] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = 0.5 * bn.forward(&xp, Mode::Train).sq_norm();
            let lm = 0.5 * bn.forward(&xm, Mode::Train).sq_norm();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 2e-2,
                "bn grad mismatch at {idx}: {num} vs {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn running_stats_converge_towards_batch_stats() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[8, 1, 4, 4], 2.0, &mut rng).map(|v| v + 5.0);
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train);
        }
        // Running statistics should converge to this batch's statistics
        // (not the population's), so compare against the sample moments.
        let batch_mean = x.mean();
        let batch_var = x.map(|v| v * v).mean() - batch_mean * batch_mean;
        assert!((bn.running_mean.data()[0] - batch_mean).abs() < 0.05);
        assert!((bn.running_var.data()[0] - batch_var).abs() < 0.1);
    }
}
