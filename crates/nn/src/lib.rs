//! Minimal CPU deep-learning stack for the MAUPITI people-counting flow.
//!
//! This crate provides exactly what the DATE 2024 paper's software flow
//! needs: NCHW convolution, batch normalisation, max pooling, linear
//! layers, ReLU, cross-entropy loss, SGD/Adam, a [`Sequential`] container
//! and the seed CNN architecture ([`CnnConfig`]) that the neural
//! architecture search in `pcount-nas` starts from.
//!
//! # Example
//!
//! ```
//! use pcount_nn::{CnnConfig, Mode};
//! use pcount_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = CnnConfig::seed().build(&mut rng);
//! let x = Tensor::zeros(&[2, 1, 8, 8]);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[2, 4]);
//! ```

mod batchnorm;
mod conv;
mod layer;
mod linear;
mod loss;
mod metrics;
mod model;
mod optim;
mod train;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use layer::{Flatten, Layer, MaxPool2d, Mode, Relu, Sequential};
pub use linear::Linear;
pub use loss::CrossEntropyLoss;
pub use metrics::{accuracy, balanced_accuracy, confusion_matrix};
pub use model::{CnnConfig, LayerDims};
pub use optim::{Adam, Optimizer, Sgd};
pub use train::{batch_select, evaluate, predict, train_classifier, TrainConfig, TrainStats};
