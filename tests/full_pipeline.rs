//! Cross-crate integration tests: the complete pipeline from synthetic
//! data to deployed integer models on the instruction-set simulator.

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::kernels::{Deployment, Target};
use maupiti::nas::{search, CostTarget, NasConfig};
use maupiti::nn::{balanced_accuracy, evaluate, train_classifier, CnnConfig, TrainConfig};
use maupiti::postproc::apply_majority;
use maupiti::quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig, QuantizedCnn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 64,
        learning_rate: 2e-3,
        weight_decay: 0.0,
        verbose: false,
    }
}

/// End-to-end: data -> train -> NAS -> QAT -> integer model -> simulator.
#[test]
fn full_stack_produces_a_working_sensor_model() {
    let mut rng = StdRng::seed_from_u64(123);
    let data = IrDataset::generate(&DatasetConfig::tiny(), 123);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let (x_test, y_test) = data.gather_normalized(fold.test.as_slice());

    // Architecture search from a small seed.
    let seed = CnnConfig::seed().with_channels(8, 8, 16);
    let nas_cfg = NasConfig {
        lambda: 0.5,
        cost_target: CostTarget::Params,
        epochs: 5,
        warmup_epochs: 1,
        batch_size: 64,
        learning_rate: 2e-3,
        verbose: false,
    };
    let mut outcome = search(seed, &x_train, &y_train, &nas_cfg, &mut rng);
    assert!(outcome.config.num_params() <= seed.num_params());

    // Fine-tune the discovered architecture and check it beats chance.
    let _ = train_classifier(
        &mut outcome.network,
        &x_train,
        &y_train,
        &quick_train_cfg(),
        &mut rng,
    );
    let fp32_bas = evaluate(&mut outcome.network, &x_test, &y_test, 4);
    assert!(
        fp32_bas > 0.3,
        "fp32 model should clearly beat the 0.25 chance level, got {fp32_bas}"
    );

    // Quantise (mixed precision) and convert to integers.
    let folded = fold_sequential(outcome.config, &outcome.network).expect("fold");
    let assignment = PrecisionAssignment::new([
        Precision::Int8,
        Precision::Int4,
        Precision::Int4,
        Precision::Int8,
    ]);
    let mut qat = QatCnn::from_folded(&folded, assignment);
    let _ = qat_finetune(
        &mut qat,
        &x_train,
        &y_train,
        &QatConfig {
            epochs: 2,
            batch_size: 64,
            learning_rate: 5e-4,
            verbose: false,
        },
        &mut rng,
    );
    let model = QuantizedCnn::from_qat(&qat);

    // Deploy on both targets; logits must match the golden integer model.
    for target in [Target::Maupiti, Target::Ibex] {
        let deployment = Deployment::new(&model, target).expect("deploy");
        assert!(deployment.code_size_bytes() <= 16 * 1024);
        assert!(deployment.data_size_bytes() <= 16 * 1024);
        for i in 0..5 {
            let frame = &x_test.data()[i * 64..(i + 1) * 64];
            let run = deployment.run_frame(frame).expect("simulate");
            let golden = model.forward_int(&model.quantize_input(frame));
            assert_eq!(run.logits, golden, "target {target} frame {i}");
        }
    }

    // The integer model still does meaningfully better than chance, and
    // majority voting does not make it worse on a stable scene.
    let int_preds = model.predict_batch(&x_test);
    let int_bas = balanced_accuracy(&int_preds, &y_test, 4);
    assert!(int_bas > 0.3, "integer BAS {int_bas}");
    let smoothed = apply_majority(&int_preds, 5);
    let maj_bas = balanced_accuracy(&smoothed, &y_test, 4);
    assert!(maj_bas > 0.25, "majority BAS {maj_bas}");
}

/// The three platform models produce consistent Table-I style metrics.
#[test]
fn platform_comparison_has_the_papers_shape() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = IrDataset::generate(&DatasetConfig::tiny(), 7);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let arch = CnnConfig::seed().with_channels(8, 8, 16);
    let mut net = arch.build(&mut rng);
    let _ = train_classifier(&mut net, &x_train, &y_train, &quick_train_cfg(), &mut rng);
    let folded = fold_sequential(arch, &net).expect("fold");
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x_train);
    let model = QuantizedCnn::from_qat(&qat);
    let frame = &x_train.data()[0..64];
    let results = maupiti::platform::evaluate_on_platforms(&model, frame).expect("platforms");
    assert_eq!(results.len(), 3);
    let stm = &results[0];
    let ibex = &results[1];
    let mau = &results[2];
    // Shape of the paper's Table I: the smart sensor needs far less code
    // and data than the vendor-runtime MCU, the STM32 is the fastest, and
    // MAUPITI is the most energy-efficient.
    assert!(mau.code_bytes < stm.code_bytes / 4);
    assert!(mau.data_bytes < stm.data_bytes);
    assert!(stm.latency_ms < mau.latency_ms);
    assert!(mau.energy_uj < ibex.energy_uj);
    assert!(mau.energy_uj < stm.energy_uj);
}

/// The dataset's temporal structure actually benefits majority voting when
/// predictions are noisy (the mechanism behind Fig. 6).
#[test]
fn majority_voting_helps_on_temporally_correlated_streams() {
    let data = IrDataset::generate(&DatasetConfig::tiny(), 99);
    let idx = data.session_indices(2);
    let labels: Vec<usize> = idx.iter().map(|&i| data.labels()[i]).collect();
    // Simulate a classifier that is wrong on every fourth frame.
    let noisy: Vec<usize> = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| if i % 4 == 3 { (l + 1) % 4 } else { l })
        .collect();
    let raw_bas = balanced_accuracy(&noisy, &labels, 4);
    let smoothed = apply_majority(&noisy, 5);
    let smoothed_bas = balanced_accuracy(&smoothed, &labels, 4);
    assert!(
        smoothed_bas > raw_bas,
        "majority voting should repair periodic errors ({smoothed_bas} vs {raw_bas})"
    );
}
