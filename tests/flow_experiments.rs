//! Integration tests of the experiment-level APIs (the flow behind
//! Figs. 5–7 and Table I) at a tiny scale.

use maupiti::flow::{
    manual_grid_baseline, pareto_front_by, run_flow, select_table1_models, BaselineConfig,
    FlowConfig,
};
use maupiti::kernels::{Deployment, Target};
use maupiti::platform::{evaluate_on_platforms, format_table1, Table1Row};

#[test]
fn flow_quantization_and_postprocessing_shift_the_front_as_in_the_paper() {
    let cfg = FlowConfig::quick();
    let result = run_flow(&cfg);

    // Fig. 5 shape: every quantised candidate needs (much) less memory
    // than the FP32 seed.
    for c in &result.quantized {
        assert!(c.memory_bytes < result.seed_point.memory_bytes);
    }
    // INT4-heavy assignments use less memory than uniform INT8 for the
    // same architecture.
    for chunk in result.quantized.chunks(cfg.assignments.len()) {
        let int8 = &chunk[0];
        let int4ish = chunk.last().unwrap();
        assert!(int4ish.memory_bytes < int8.memory_bytes);
    }
    // Fig. 6 shape: on average, majority voting does not hurt.
    let mean_single: f64 =
        result.quantized.iter().map(|c| c.bas).sum::<f64>() / result.quantized.len() as f64;
    let mean_majority: f64 = result.quantized.iter().map(|c| c.bas_majority).sum::<f64>()
        / result.quantized.len() as f64;
    assert!(
        mean_majority + 0.05 >= mean_single,
        "majority voting collapsed accuracy: {mean_majority} vs {mean_single}"
    );
    // Pareto fronts exist in both planes.
    assert!(!pareto_front_by(&result.majority_points(), false).is_empty());
    assert!(!pareto_front_by(&result.majority_points(), true).is_empty());
}

#[test]
fn baseline_grid_and_table1_generation_run_end_to_end() {
    let baseline = manual_grid_baseline(&BaselineConfig::quick());
    assert!(!baseline.is_empty());

    let result = run_flow(&FlowConfig::quick());
    let (top, minus5, mini) = select_table1_models(&result.quantized).expect("candidates");
    let mut rows = Vec::new();
    let frame = vec![0.0f32; 64];
    for (name, candidate) in [("Top", &top), ("-5%", &minus5), ("Mini", &mini)] {
        let results = evaluate_on_platforms(&candidate.quantized, &frame).expect("platforms");
        rows.push(Table1Row {
            model: name.to_string(),
            results,
        });
    }
    let table = format_table1(&rows);
    assert!(table.contains("Top"));
    assert!(table.contains("Mini"));
    assert!(table.contains("MAUPITI"));

    // The Mini model is by construction the smallest candidate, and both
    // extremes of the selection deploy onto the 16 KB + 16 KB chip.
    // (Cycle counts are NOT asserted to be ordered: an INT4-heavy Mini can
    // be smaller in memory yet slightly slower than an INT8 Top because of
    // nibble packing/unpacking, the same effect the paper describes for the
    // MAUPITI kernels' leftover handling.)
    assert!(mini.memory_bytes <= top.memory_bytes);
    let mini_dep = Deployment::new(&mini.quantized, Target::Maupiti).expect("deploy mini");
    let top_dep = Deployment::new(&top.quantized, Target::Maupiti).expect("deploy top");
    let mini_run = mini_dep.run_frame(&frame).expect("run mini");
    let top_run = top_dep.run_frame(&frame).expect("run top");
    assert!(mini_run.cycles > 0 && top_run.cycles > 0);
    assert!(mini_dep.data_size_bytes() <= 16 * 1024);
    assert!(top_dep.data_size_bytes() <= 16 * 1024);
}
