//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses: a
//! seedable [`rngs::StdRng`], the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`]. The generator
//! is xoshiro256** seeded through SplitMix64 — deterministic, fast and of
//! far higher quality than the tests and training loops here require.
//!
//! Only the API subset exercised by this workspace is provided; it is not a
//! general replacement for the real crate.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can be uniformly sampled (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNG types (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Extension trait providing in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i32..7);
            assert!((-3..7).contains(&v));
            let f = rng.gen_range(0.25f32..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
