//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion it uses: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is a simple warmup + timed-batch mean (wall clock, reported
//! as time per iteration and iterations per second on stdout). There is no
//! statistical analysis, HTML report or regression tracking — enough to
//! compare implementations on the same machine in the same run.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ~10 batches within
        // the measurement budget.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.measurement_time / 10 || warmup_iters < 1 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((self.measurement_time.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);

        let mut total_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.measurement_time {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

fn report(label: &str, ns_per_iter: f64) {
    let (scaled, unit) = if ns_per_iter >= 1e9 {
        (ns_per_iter / 1e9, "s")
    } else if ns_per_iter >= 1e6 {
        (ns_per_iter / 1e6, "ms")
    } else if ns_per_iter >= 1e3 {
        (ns_per_iter / 1e3, "us")
    } else {
        (ns_per_iter, "ns")
    };
    println!(
        "{label:<50} time: {scaled:>10.3} {unit}/iter  ({:.3e} iter/s)",
        1e9 / ns_per_iter
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (this harness sizes batches by time, not count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Benchmarks `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            last_ns_per_iter: f64::NAN,
        };
        routine(&mut bencher, input);
        report(&label, bencher.last_ns_per_iter);
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        let mut bencher = Bencher {
            measurement_time: self.criterion.measurement_time,
            last_ns_per_iter: f64::NAN,
        };
        routine(&mut bencher);
        report(&label, bencher.last_ns_per_iter);
        self
    }

    /// Ends the group (compatibility no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Compatibility no-op (no CLI parsing in the offline harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let label = id.into().label;
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            last_ns_per_iter: f64::NAN,
        };
        routine(&mut bencher);
        report(&label, bencher.last_ns_per_iter);
        self
    }
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(20),
        };
        let mut group = c.benchmark_group("test");
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
