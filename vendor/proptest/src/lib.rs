//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] test macro, range and
//! tuple [`Strategy`] implementations, [`prop_oneof!`],
//! [`collection::vec`], [`prelude::any`] and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one way: failing cases are not
//! shrunk. Each generated case is reported through a plain `assert!`
//! panic that includes the case number, which is deterministic per test
//! name, so failures reproduce exactly across runs.

use std::marker::PhantomData;

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 128;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Creates a per-test RNG; the seed is derived from the test name so
    /// every test sees an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        use rand::SeedableRng;
        Self(rand::rngs::StdRng::seed_from_u64(seed))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice between boxed alternative strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union from boxed arms; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Boxes one arm (helper for the macro, avoids naming the arm type).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Values with a canonical full-domain strategy (subset of
/// `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Returns the canonical strategy for the type.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Strategy returned by [`prelude::any`].
pub struct AnyStrategy<T> {
    gen: fn(&mut TestRng) -> T,
    _marker: PhantomData<T>,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<Self> {
                AnyStrategy {
                    gen: |rng| rng.next_u64() as $t,
                    _marker: PhantomData,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> AnyStrategy<Self> {
        AnyStrategy {
            gen: |rng| rng.next_u64() & 1 == 1,
            _marker: PhantomData,
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a fixed or ranged length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports of proptest tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{AnyStrategy, Arbitrary, Just, Strategy, TestRng, Union};

    /// Canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        T::arbitrary()
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`CASES`](crate::CASES) deterministic pseudo-random
/// cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
            for __proptest_case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let __proptest_run = || -> () { $body };
                __proptest_run();
            }
        }
    )+};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (0usize..4).generate(&mut rng);
            assert!(v < 4);
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let xs = collection::vec(0i32..10, 1..16).generate(&mut rng);
            assert!(!xs.is_empty() && xs.len() < 16);
            assert!(xs.iter().all(|&x| (0..10).contains(&x)));
            let fixed = collection::vec(0i32..10, 4).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![0i32..1, 10i32..11, 20i32..21];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = [false; 3];
        for _ in 0..256 {
            match strat.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(a in any::<u32>(), b in 0usize..7) {
            prop_assert!(b < 7);
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }
    }
}
