//! Quickstart: train a small people-counting CNN on the synthetic IR
//! dataset, quantise it to INT8 and run it on the simulated MAUPITI smart
//! sensor.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Set `PCOUNT_TRACE=<path>` to record a chrome://tracing profile of the
//! run (`.jsonl` suffix selects the JSONL exporter instead); open the
//! file at `chrome://tracing` or <https://ui.perfetto.dev>.

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::kernels::{Deployment, Target};
use maupiti::nn::{evaluate, train_classifier, CnnConfig, TrainConfig};
use maupiti::platform::PlatformSpec;
use maupiti::quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig, QuantizedCnn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    maupiti::telemetry::init_from_env();
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Generate a small synthetic LINAIGE-like dataset and a CV fold.
    let data = IrDataset::generate(&DatasetConfig::standard().scaled(0.25), 42);
    println!(
        "dataset: {} frames, class histogram {:?}",
        data.len(),
        data.class_histogram()
    );
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let (x_test, y_test) = data.gather_normalized(fold.test.as_slice());

    // 2. Train a compact floating-point CNN.
    let arch = CnnConfig::seed().with_channels(8, 8, 16);
    let mut net = arch.build(&mut rng);
    let train_cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    let stats = train_classifier(&mut net, &x_train, &y_train, &train_cfg, &mut rng);
    let fp32_bas = evaluate(&mut net, &x_test, &y_test, data.num_classes());
    println!(
        "fp32 model: {} params, final loss {:.3}, test BAS {:.3}",
        arch.num_params(),
        stats.final_loss(),
        fp32_bas
    );

    // 3. Fold batch-norm, quantise to INT8 and fine-tune.
    let folded = fold_sequential(arch, &net)?;
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    let _ = qat_finetune(
        &mut qat,
        &x_train,
        &y_train,
        &QatConfig::default(),
        &mut rng,
    );
    let int8_bas = qat.evaluate(&x_test, &y_test, data.num_classes());
    println!(
        "int8 model: {} bytes of weights, test BAS {:.3}",
        qat.memory_bytes(),
        int8_bas
    );

    // 4. Deploy on the simulated MAUPITI smart sensor and measure it.
    let quantized = QuantizedCnn::from_qat(&qat);
    let deployment = Deployment::new(&quantized, Target::Maupiti)?;
    let frame = &x_test.data()[0..64];
    let run = deployment.run_frame(frame)?;
    println!(
        "MAUPITI: code {} B, data {} B, {} cycles/inference ({} SDOTP), energy {:.3} uJ",
        deployment.code_size_bytes(),
        deployment.data_size_bytes(),
        run.cycles,
        run.sdotp,
        PlatformSpec::MAUPITI.energy_uj(run.cycles)
    );
    println!(
        "predicted people count for the first test frame: {}",
        run.prediction
    );
    if let Some(path) = maupiti::telemetry::flush_env_trace()? {
        println!("wrote telemetry trace to {path}");
    }
    Ok(())
}
