//! Smart-building occupancy monitoring, end to end: run the full
//! optimisation flow (DNAS -> mixed-precision QAT -> majority voting),
//! pick the model a battery-powered ceiling sensor would ship with, then
//! deploy that model to a simulated multi-node fleet — hundreds of
//! 8×8 IR sensors across rooms and floors feeding a sharded fusion
//! service with admission control, backpressure and sick-node
//! quarantine — and ride out a fault storm without losing the building
//! occupancy estimate. A final segment crashes half the fusion shards
//! mid-run: queued frames re-route to the survivors, rooms migrate and
//! return home, and each restart recovers from its last checkpoint —
//! all in virtual time, so the outage replays bit-identically.
//!
//! Run with: `cargo run --release --example smart_building_occupancy`

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::fleet::{CrashConfig, FleetConfig, FleetService, StormConfig};
use maupiti::flow::{pareto_front_by, run_flow, select_table1_models, FlowConfig};
use maupiti::kernels::{Deployment, Target};

fn main() {
    // Part 1 — the optimisation flow. A scaled-down configuration that
    // finishes in a couple of minutes; increase the epochs / λ grid for
    // a closer reproduction.
    let mut cfg = FlowConfig::quick();
    cfg.majority_window = 5;
    println!(
        "running the flow: {} λ values x {} precision assignments...",
        cfg.lambdas.len(),
        cfg.assignments.len()
    );
    let result = run_flow(&cfg);

    println!(
        "\nseed: BAS {:.3} at {} KiB (FP32)",
        result.seed_point.bas,
        result.seed_point.memory_bytes / 1024
    );
    println!("\nPareto front (BAS vs memory, majority voting on):");
    for p in pareto_front_by(&result.majority_points(), false) {
        println!(
            "  {:>7} B  {:>9} MACs  BAS {:.3}   [{}]",
            p.memory_bytes, p.macs, p.bas, p.label
        );
    }

    let Some((top, minus5, mini)) = select_table1_models(&result.quantized) else {
        println!("no candidates produced");
        return;
    };
    println!("\nmodel selection for deployment:");
    println!(
        "  Top : {}  BAS {:.3}  {} B",
        top.label, top.bas_majority, top.memory_bytes
    );
    println!(
        "  -5% : {}  BAS {:.3}  {} B",
        minus5.label, minus5.bas_majority, minus5.memory_bytes
    );
    println!(
        "  Mini: {}  BAS {:.3}  {} B",
        mini.label, mini.bas_majority, mini.memory_bytes
    );
    println!(
        "\nan occupancy sensor with a tight energy budget would ship the `Mini` \
         model; one that must not miss occupants would ship `Top`."
    );

    // Part 2 — fleet serving. Ship the Mini model to every ceiling
    // sensor of a simulated building: 240 nodes over 24 rooms, four
    // fusion shards, baseline sensor chaos plus a storm knocking out a
    // third of the fleet for the middle half of the run.
    let deployment = Deployment::new(&mini.quantized, Target::Maupiti).expect("deploy");
    let data = IrDataset::generate(&DatasetConfig::tiny(), 42);
    let fleet_cfg = FleetConfig {
        storm: Some(StormConfig::default()),
        ..FleetConfig::default()
    };
    println!(
        "\ndeploying `{}` to a {}-node fleet ({} rooms, {} shards) with a fault storm...",
        mini.label, fleet_cfg.nodes, fleet_cfg.rooms, fleet_cfg.shards
    );
    let svc = FleetService::new(deployment, fleet_cfg, &data).expect("fleet");
    let mut pool = svc.make_pool(4).expect("pool");
    let report = svc.run(&mut pool);
    assert!(report.conservation_holds(), "every frame disposed of once");

    let t = &report.totals;
    println!(
        "fleet run: {} deliveries — {} fused, {} shed, {} downsampled, {} gaps",
        report.deliveries.len(),
        t.fused,
        t.shed,
        t.downsampled,
        t.gaps
    );
    println!(
        "  latency p50 {} us / p99 {} us, peak queue depth {}",
        report.latency.p50 / 1_000,
        report.latency.p99 / 1_000,
        report.queue_depth_peak
    );
    println!(
        "  quarantine: {} trips, {} readmissions, {} frames withheld",
        t.quarantine_trips, t.readmissions, t.quarantined_frames
    );
    for s in &report.shard_reports {
        println!(
            "  shard {}: {} nodes, error-budget burn {} milli",
            s.shard, s.nodes, s.burn_milli
        );
    }
    println!(
        "  occupancy: {} change points, final estimate {} occupants, digest {}",
        report.occupancy.changes.len(),
        report.occupancy.final_total(),
        report.occupancy.hash_hex()
    );

    // The whole run is virtual-time discrete-event simulation: the same
    // fleet seed reproduces this digest bit-for-bit at any pool width.
    let mut serial = svc.make_pool(1).expect("pool");
    let replay = svc.run(&mut serial);
    assert_eq!(replay.occupancy.hash, report.occupancy.hash);
    println!("  replay on 1 thread reproduced the digest — run is deterministic");

    // Part 3 — shard failover. Every other fusion shard crashes mid-run
    // and restarts from its last checkpoint; the crashed queues re-route
    // to the survivors and the building estimate rides out the outage.
    let crash_cfg = FleetConfig {
        crash: Some(CrashConfig::default()),
        ..FleetConfig::default()
    };
    println!(
        "\ncrashing every other shard mid-run (reroute policy, {} ms checkpoints)...",
        crash_cfg.checkpoint_period_ms
    );
    let crashy = FleetService::new(
        Deployment::new(&mini.quantized, Target::Maupiti).expect("deploy"),
        crash_cfg,
        &data,
    )
    .expect("fleet");
    let mut pool = crashy.make_pool(4).expect("pool");
    let outage = crashy.run(&mut pool);
    assert!(outage.conservation_holds(), "every frame disposed of once");
    for c in &outage.crash_reports {
        println!(
            "  shard {} down {} -> {} ms: {} queued ({} rerouted, {} lost), \
             {} rooms migrated, recovered in {} ms",
            c.shard,
            c.crash_ns / 1_000_000,
            c.restart_ns / 1_000_000,
            c.queued_at_crash,
            c.rerouted,
            c.crash_lost,
            c.migrations_out,
            c.recovery_ns / 1_000_000,
        );
    }
    let t = &outage.totals;
    println!(
        "  failover: {} crashes, {} checkpoints, {} migrations, {} frames rerouted, \
         {} lost — occupancy digest {}",
        t.crashes,
        t.checkpoints,
        t.migrations,
        t.rerouted,
        t.crash_lost,
        outage.occupancy.hash_hex()
    );

    // The crash schedule lives in the same virtual clock, so even the
    // outage replays bit-identically on a single thread.
    let mut serial = crashy.make_pool(1).expect("pool");
    let replay = crashy.run(&mut serial);
    assert_eq!(replay.to_json(), outage.to_json());
    println!("  replay on 1 thread reproduced the outage — failover is deterministic");
}
