//! Smart-building occupancy monitoring: run the full optimisation flow
//! (DNAS -> mixed-precision QAT -> majority voting) and pick the model a
//! battery-powered ceiling sensor would ship with.
//!
//! Run with: `cargo run --release --example smart_building_occupancy`

use maupiti::flow::{pareto_front_by, run_flow, select_table1_models, FlowConfig};

fn main() {
    // A scaled-down flow configuration that finishes in a couple of
    // minutes; increase the epochs / λ grid for a closer reproduction.
    let mut cfg = FlowConfig::quick();
    cfg.majority_window = 5;
    println!(
        "running the flow: {} λ values x {} precision assignments...",
        cfg.lambdas.len(),
        cfg.assignments.len()
    );
    let result = run_flow(&cfg);

    println!(
        "\nseed: BAS {:.3} at {} KiB (FP32)",
        result.seed_point.bas,
        result.seed_point.memory_bytes / 1024
    );
    println!("\nPareto front (BAS vs memory, majority voting on):");
    for p in pareto_front_by(&result.majority_points(), false) {
        println!(
            "  {:>7} B  {:>9} MACs  BAS {:.3}   [{}]",
            p.memory_bytes, p.macs, p.bas, p.label
        );
    }

    match select_table1_models(&result.quantized) {
        Some((top, minus5, mini)) => {
            println!("\nmodel selection for deployment:");
            println!(
                "  Top : {}  BAS {:.3}  {} B",
                top.label, top.bas_majority, top.memory_bytes
            );
            println!(
                "  -5% : {}  BAS {:.3}  {} B",
                minus5.label, minus5.bas_majority, minus5.memory_bytes
            );
            println!(
                "  Mini: {}  BAS {:.3}  {} B",
                mini.label, mini.bas_majority, mini.memory_bytes
            );
            println!(
                "\nan occupancy sensor with a tight energy budget would ship the `Mini` \
                 model; one that must not miss occupants would ship `Top`."
            );
        }
        None => println!("no candidates produced"),
    }
}
