//! Edge deployment deep dive: compile one quantised model for MAUPITI and
//! for a vanilla IBEX, run both on the instruction-set simulator, and
//! compare the instruction mix, cycles and energy against an STM32.
//!
//! Run with: `cargo run --release --example edge_deployment`

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::kernels::{hot_blocks_json, Deployment, MemoryModel, Target};
use maupiti::nn::{train_classifier, CnnConfig, TrainConfig};
use maupiti::platform::{evaluate_on_platforms, PlatformSpec};
use maupiti::quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig, QuantizedCnn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let data = IrDataset::generate(&DatasetConfig::standard().scaled(0.2), 3);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let (x_test, _) = data.gather_normalized(fold.test.as_slice());

    // Train and quantise a mixed-precision model (INT 8-4-4-8).
    let arch = CnnConfig::seed().with_channels(12, 8, 16);
    let mut net = arch.build(&mut rng);
    let _ = train_classifier(
        &mut net,
        &x_train,
        &y_train,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        &mut rng,
    );
    let folded = fold_sequential(arch, &net)?;
    let assignment = PrecisionAssignment::new([
        Precision::Int8,
        Precision::Int4,
        Precision::Int4,
        Precision::Int8,
    ]);
    let mut qat = QatCnn::from_folded(&folded, assignment);
    let _ = qat_finetune(
        &mut qat,
        &x_train,
        &y_train,
        &QatConfig::default(),
        &mut rng,
    );
    let model = QuantizedCnn::from_qat(&qat);
    println!(
        "model {assignment}: {} weight bytes, {} MACs",
        model.weight_bytes(),
        model.macs()
    );

    let frame = &x_test.data()[0..64];

    // Cycle-level comparison between the SDOTP and scalar kernels.
    for target in [Target::Ibex, Target::Maupiti] {
        let deployment = Deployment::new(&model, target)?;
        let run = deployment.run_frame(frame)?;
        let spec = match target {
            Target::Maupiti => PlatformSpec::MAUPITI,
            Target::Ibex => PlatformSpec::IBEX,
        };
        println!(
            "\n{target}: code {} B, data {} B",
            deployment.code_size_bytes(),
            deployment.data_size_bytes()
        );
        println!(
            "  {} instructions, {} cycles, {} SDOTP ops, {:.2} ms, {:.3} uJ",
            run.instructions,
            run.cycles,
            run.sdotp,
            spec.latency_ms(run.cycles),
            spec.energy_uj(run.cycles)
        );
    }

    // Hot-spot profile: the superblocks where the MAUPITI inference spends
    // its instructions and memory stalls, as machine-readable JSON. The
    // fused_* columns show which blocks the block engine ran as macro-op
    // fused loops (SDOTP channel loops, conv3x3 guard nests, memset/copy)
    // and how many loop iterations each fused entry absorbed.
    let mut profiled = Deployment::new(&model, Target::Maupiti)?;
    profiled.set_memory_model(MemoryModel::maupiti());
    let hot = profiled.hottest_blocks(frame, 5)?;
    println!("\nhottest superblocks (MAUPITI, maupiti memory model):");
    println!("{}", hot_blocks_json(&hot));

    // Fused-loop breakdown: per-block attribution (instructions per
    // block) still sums to the run total with fusion active.
    let all = profiled.hottest_blocks(frame, usize::MAX)?;
    let attributed: u64 = all.iter().map(|b| b.instructions).sum();
    let run = profiled.run_frame(frame)?;
    assert_eq!(
        attributed, run.instructions,
        "per-block attribution must sum to total instret"
    );
    println!(
        "\nfused loops ({} of {} instructions attributed):",
        attributed, run.instructions
    );
    println!(
        "  {:<9} {:>13} {:>8} {:>11} {:>12}",
        "pc", "kind", "entries", "iterations", "fused cycles"
    );
    for b in all.iter().filter(|b| b.fused_kind.is_some()) {
        println!(
            "  {:#09x} {:>13} {:>8} {:>11} {:>12}",
            b.entry_pc,
            b.fused_kind.unwrap_or("-"),
            b.fused_entries,
            b.fused_iterations,
            b.fused_cycles
        );
    }

    // Full three-platform comparison (Table-I style row).
    println!("\nThree-platform comparison:");
    for r in evaluate_on_platforms(&model, frame)? {
        println!(
            "  {:<8} code {:>6} B  data {:>6} B  latency {:>7.2} ms  energy {:>7.3} uJ",
            r.platform, r.code_bytes, r.data_bytes, r.latency_ms, r.energy_uj
        );
    }
    Ok(())
}
