//! Resilient streaming: deploy the quantised people counter and stream a
//! session of IR frames through the supervised deployment while a
//! deterministic fault plan corrupts the feed — dropped and duplicated
//! frames, stuck pixels, saturation and noise bursts, clock jitter and
//! simulator stalls.
//!
//! Run with: `cargo run --release --example resilient_streaming`
//!
//! The supervised stream retries transient stalls with exponential
//! backoff, trips a circuit breaker on consecutive unrecoverable faults,
//! quarantines faulted simulator CPUs and degrades gracefully by holding
//! the last good prediction, so the output stream never aborts. The same
//! seed always produces the same faults, recoveries and predictions.

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::kernels::{Deployment, Target};
use maupiti::nn::{train_classifier, CnnConfig, TrainConfig};
use maupiti::quant::{fold_sequential, Precision, PrecisionAssignment, QatCnn, QuantizedCnn};
use maupiti::resilience::{
    evaluate_robustness, FaultConfig, FaultPlan, ResilienceConfig, ResilientDeployment, TickStatus,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Train and quantise a compact people counter (see `quickstart`).
    let data = IrDataset::generate(&DatasetConfig::tiny(), 42);
    let fold = &data.leave_one_session_out()[0];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let arch = CnnConfig::seed().with_channels(8, 8, 16);
    let mut net = arch.build(&mut rng);
    let _ = train_classifier(
        &mut net,
        &x_train,
        &y_train,
        &TrainConfig::default(),
        &mut rng,
    );
    let folded = fold_sequential(arch, &net)?;
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    qat.calibrate(&x_train);
    let model = QuantizedCnn::from_qat(&qat);
    let deployment = Deployment::new(&model, Target::Maupiti)?;

    // 2. Take one held-out session as the live frame stream and corrupt
    //    it with a seeded fault plan at 20% intensity.
    let (frames, labels) = data.session_stream(data.num_sessions() - 1);
    let plan = FaultPlan::new(7, FaultConfig::uniform(0.2));
    let stream = plan.inject(&frames);
    println!(
        "stream: {} ticks from {} frames, {:.0}% touched by faults {:?}",
        stream.ticks.len(),
        frames.shape()[0],
        stream.fault_rate() * 100.0,
        stream.fault_counts(),
    );

    // 3. Supervise the stream: per-frame watchdog, retry with backoff,
    //    circuit breaker, quarantine, hold-last-good.
    let supervised = ResilientDeployment::new(deployment.clone(), ResilienceConfig::default());
    let mut pool = deployment.make_pool(4)?;
    let report = supervised.run_stream(&stream, &mut pool);
    let correct = report
        .outcomes
        .iter()
        .filter(|o| o.emitted == labels[o.source_index])
        .count();
    println!(
        "supervised: {}/{} ticks correct, {} ok / {} recovered / {} fallback / {} gap / {} shed",
        correct,
        report.outcomes.len(),
        report.stats.ok_ticks,
        report.stats.recovered_ticks,
        report.stats.fallback_ticks,
        report.stats.gap_ticks,
        report.stats.breaker_skips,
    );
    println!(
        "recovery: {} retries, {} quarantines, {} trips, {} ms simulated backoff, \
         error budget {} milli burned",
        report.stats.retries,
        report.stats.quarantines,
        report.stats.breaker_trips,
        report.stats.total_backoff_ms,
        report.error_budget_burn_milli,
    );
    for o in report
        .outcomes
        .iter()
        .filter(|o| o.status != TickStatus::Ok)
    {
        println!(
            "  tick {:>3} (frame {:>3}): {:?} -> emitted {} (backoff {} ms)",
            o.tick, o.source_index, o.status, o.emitted, o.backoff_ms
        );
    }

    // 4. Sweep fault intensity into an accuracy-vs-fault-rate curve.
    let robust = evaluate_robustness(
        &deployment,
        &frames,
        &labels,
        &ResilienceConfig::default(),
        7,
        &[0.0, 0.1, 0.2, 0.4],
        4,
    )?;
    println!(
        "robustness curve (baseline {:.3}):",
        robust.baseline_accuracy
    );
    for p in &robust.points {
        println!(
            "  intensity {:.2}: fault rate {:.3} -> accuracy {:.3}",
            p.intensity, p.fault_rate, p.accuracy
        );
    }
    Ok(())
}
