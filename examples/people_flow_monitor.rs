//! People-flow monitoring: stream a whole recording session through a
//! deployed model frame-by-frame (as the sensor would at 10 FPS) and show
//! how majority voting stabilises the occupancy estimate over time.
//!
//! Run with: `cargo run --release --example people_flow_monitor`

use maupiti::dataset::{DatasetConfig, IrDataset};
use maupiti::kernels::{Deployment, Target};
use maupiti::nn::{balanced_accuracy, train_classifier, CnnConfig, TrainConfig};
use maupiti::postproc::MajorityVoter;
use maupiti::quant::{
    fold_sequential, qat_finetune, Precision, PrecisionAssignment, QatCnn, QatConfig, QuantizedCnn,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let data = IrDataset::generate(&DatasetConfig::standard().scaled(0.2), 11);
    let fold = &data.leave_one_session_out()[1];
    let (x_train, y_train) = data.gather_normalized(fold.train.as_slice());
    let (x_test, y_test) = data.gather_normalized(fold.test.as_slice());

    // Train + quantise a small model and deploy it on MAUPITI.
    let arch = CnnConfig::seed().with_channels(8, 8, 16);
    let mut net = arch.build(&mut rng);
    let _ = train_classifier(
        &mut net,
        &x_train,
        &y_train,
        &TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        &mut rng,
    );
    let folded = fold_sequential(arch, &net)?;
    let mut qat = QatCnn::from_folded(&folded, PrecisionAssignment::uniform(Precision::Int8));
    let _ = qat_finetune(
        &mut qat,
        &x_train,
        &y_train,
        &QatConfig::default(),
        &mut rng,
    );
    let deployment = Deployment::new(&QuantizedCnn::from_qat(&qat), Target::Maupiti)?;

    // Stream the held-out session in temporal order, exactly as the sensor
    // would see it, and smooth with a 5-frame majority window.
    let mut voter = MajorityVoter::new(5);
    let mut raw_preds = Vec::new();
    let mut smoothed_preds = Vec::new();
    let frames = x_test.shape()[0].min(200);
    let mut total_cycles = 0u64;
    for i in 0..frames {
        let frame = &x_test.data()[i * 64..(i + 1) * 64];
        let run = deployment.run_frame(frame)?;
        total_cycles += run.cycles;
        raw_preds.push(run.prediction);
        smoothed_preds.push(voter.push(run.prediction));
    }
    let truth = &y_test[..frames];
    println!("streamed {frames} frames of the held-out session through the simulated sensor");
    println!(
        "  per-frame BAS: {:.3}   majority-voted BAS: {:.3}",
        balanced_accuracy(&raw_preds, truth, 4),
        balanced_accuracy(&smoothed_preds, truth, 4)
    );
    println!(
        "  mean cycles per frame: {} (~{:.1} ms at 20 MHz, {:.1}% of the 100 ms frame period)",
        total_cycles / frames as u64,
        total_cycles as f64 / frames as f64 / 20e3,
        total_cycles as f64 / frames as f64 / 20e3 / 100.0 * 100.0
    );
    // Show a short timeline excerpt.
    println!("\n  t    truth  raw  majority");
    for i in (0..frames.min(40)).step_by(4) {
        println!(
            "  {:>3}    {}      {}      {}",
            i, truth[i], raw_preds[i], smoothed_preds[i]
        );
    }
    Ok(())
}
